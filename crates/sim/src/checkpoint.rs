//! Run-level checkpoint files — the persistence layer behind the CLI's
//! `--checkpoint-every` and `--resume-from` flags.
//!
//! A [`RunCheckpoint`] bundles everything a later process needs to
//! continue a run bit-for-bit (see `dragonfly_engine::checkpoint` for the
//! engine-side contract):
//!
//! * the originating [`ExperimentSpec`] — resume refuses to continue under
//!   a different spec, because the engine snapshot only stores state the
//!   spec cannot reconstruct;
//! * the [`EngineCheckpoint`] (event queue, packet arena, router/NIC/agent
//!   state, fault cursor, injector state);
//! * the [`MetricsCollector`], which the engine snapshot deliberately
//!   excludes (observers are a sim-layer concern).
//!
//! Files are JSON: self-describing, diffable in tests, and free of any
//! dependency the workspace does not already vendor. A version tag guards
//! against silently resuming from an incompatible layout.

use crate::collector::MetricsCollector;
use crate::spec::{ExperimentSpec, SpecError};
use dragonfly_engine::checkpoint::EngineCheckpoint;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Format tag stored in every checkpoint file. Bump when any serialized
/// layout changes incompatibly.
///
/// v2 adds the bounded-memory state: streaming latency-sketch bins in the
/// collector and sparse (`q_rows`-keyed) paged Q-table rows in agent
/// snapshots.
pub const CHECKPOINT_VERSION: &str = "qadaptive-checkpoint-v2";

/// Older format tags this build still reads. Every field added since v1
/// is `#[serde(default)]`-compatible (exact-mode sketches, dense Q-table
/// rows), so a v1 file deserializes into the current layout unchanged.
pub const COMPATIBLE_VERSIONS: &[&str] = &["qadaptive-checkpoint-v1"];

/// A complete, self-contained snapshot of a running experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format tag ([`CHECKPOINT_VERSION`]).
    pub version: String,
    /// The experiment this snapshot belongs to (after any CLI overrides).
    pub spec: ExperimentSpec,
    /// Engine state (see `dragonfly_engine::checkpoint`).
    pub engine: EngineCheckpoint,
    /// The measurement observer at snapshot time.
    pub collector: MetricsCollector,
}

impl RunCheckpoint {
    /// Bundle a snapshot taken mid-run.
    pub fn new(
        spec: ExperimentSpec,
        engine: EngineCheckpoint,
        collector: MetricsCollector,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION.to_string(),
            spec,
            engine,
            collector,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints always serialize")
    }

    /// Parse from JSON, rejecting unknown format versions with a
    /// contextual error.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let ck: Self = serde_json::from_str(text)
            .map_err(|e| SpecError(format!("malformed checkpoint file: {e}")))?;
        if ck.version != CHECKPOINT_VERSION && !COMPATIBLE_VERSIONS.contains(&ck.version.as_str()) {
            return Err(SpecError(format!(
                "checkpoint version {:?} is not supported (this build reads {:?} and {:?})",
                ck.version, CHECKPOINT_VERSION, COMPATIBLE_VERSIONS
            )));
        }
        Ok(ck)
    }

    /// Write the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SpecError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json())
            .map_err(|e| SpecError(format!("cannot write checkpoint {}: {e}", path.display())))
    }

    /// Read a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read checkpoint {}: {e}", path.display())))?;
        Self::from_json(&text)
    }

    /// Verify that `spec` is the experiment this checkpoint was taken
    /// from. The engine snapshot only stores state the spec cannot
    /// rebuild, so resuming under a different spec would silently mix two
    /// experiments; the comparison is on the canonical JSON encoding.
    pub fn check_spec_matches(&self, spec: &ExperimentSpec) -> Result<(), SpecError> {
        if self.spec.to_json() != spec.to_json() {
            return Err(SpecError(format!(
                "checkpoint was taken from experiment {:?}, which differs from the \
                 requested experiment {:?}: resume with the same scenario file, seed \
                 and engine overrides as the checkpointing run",
                self.spec.name, spec.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    fn spec() -> ExperimentSpec {
        let mut s = ExperimentSpec::new(DragonflyConfig::tiny());
        s.name = "ck-test".to_string();
        s
    }

    fn sample() -> RunCheckpoint {
        let mut engine = EngineCheckpoint {
            now: 123,
            ..Default::default()
        };
        engine.shard.generated = 5;
        RunCheckpoint::new(spec(), engine, MetricsCollector::new(0, 1_000))
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let back = RunCheckpoint::from_json(&sample().to_json()).unwrap();
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back.engine.now, 123);
        assert_eq!(back.engine.shard.generated, 5);
        assert_eq!(back.collector.window_end_ns, 1_000);
        back.check_spec_matches(&spec()).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected_with_context() {
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v999".to_string();
        let err = RunCheckpoint::from_json(&ck.to_json()).unwrap_err();
        assert!(err.0.contains("v999"), "error names the bad version: {err}");
    }

    #[test]
    fn v1_checkpoints_are_still_accepted() {
        // Every field v2 added (sketch bins, sparse q_rows) is
        // serde-default-compatible, so the v1 tag stays readable.
        let mut ck = sample();
        ck.version = "qadaptive-checkpoint-v1".to_string();
        let back = RunCheckpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.version, "qadaptive-checkpoint-v1");
        assert_eq!(back.engine.now, 123);
    }

    #[test]
    fn spec_mismatch_is_rejected_with_both_names() {
        let ck = sample();
        let mut other = spec();
        other.seed = Some(999);
        let err = ck.check_spec_matches(&other).unwrap_err();
        assert!(
            err.0.contains("ck-test"),
            "error names the experiments: {err}"
        );
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("qadaptive-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt.json");
        sample().save(&path).unwrap();
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.engine.now, 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_contextual_error() {
        let err = RunCheckpoint::load("/nonexistent/qadaptive.ckpt.json").unwrap_err();
        assert!(err.0.contains("cannot read checkpoint"), "{err}");
    }
}
