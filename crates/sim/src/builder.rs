//! One-stop construction and execution of a single simulation point.

use crate::collector::MetricsCollector;
use crate::fault::{compile_faults, FaultSpecEntry};
use crate::injector::PatternInjector;
use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::injector::{EmptyInjector, TrafficInjector};
use dragonfly_engine::time::SimTime;
use dragonfly_engine::Engine;
use dragonfly_metrics::report::SimulationReport;
use dragonfly_metrics::timeseries::TimeSeries;
use dragonfly_routing::RoutingSpec;
use dragonfly_topology::{Topology, TopologySpec};
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use dragonfly_workload::WorkloadSpec;
use std::time::Instant;

/// Builder for a single simulation run: one topology, one routing
/// algorithm, one traffic pattern, one offered-load schedule.
///
/// ```
/// use dragonfly_sim::builder::SimulationBuilder;
/// use dragonfly_topology::config::DragonflyConfig;
/// use dragonfly_routing::RoutingSpec;
/// use dragonfly_traffic::TrafficSpec;
///
/// let report = SimulationBuilder::new(DragonflyConfig::tiny())
///     .routing(RoutingSpec::Minimal)
///     .traffic(TrafficSpec::UniformRandom)
///     .offered_load(0.2)
///     .warmup_ns(10_000)
///     .measure_ns(10_000)
///     .seed(1)
///     .run();
/// assert!(report.packets_delivered > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    topology: TopologySpec,
    routing: RoutingSpec,
    traffic: TrafficSpec,
    schedule: LoadSchedule,
    warmup_ns: SimTime,
    measure_ns: SimTime,
    seed: u64,
    series_bin_ns: Option<u64>,
    engine_config: Option<EngineConfig>,
    /// Keep generating traffic after the measurement window ends (the extra
    /// tail is not measured; it only exists so the window is not biased by
    /// an emptying network).
    tail_ns: SimTime,
    /// Closed-loop workload (spec + intensity multiplier). When set, the
    /// open-loop pattern injector is replaced by per-node task programs
    /// and the run drains instead of stopping at a wall-clock boundary.
    workload: Option<(WorkloadSpec, f64)>,
    /// Fault-injection events, compiled against the topology and
    /// installed before the run starts. Empty = fault-free.
    faults: Vec<FaultSpecEntry>,
    /// Use the bounded-memory streaming latency sketch instead of exact
    /// sample storage (see [`MetricsCollector::streaming`]).
    streaming_metrics: bool,
}

impl SimulationBuilder {
    /// Start building a simulation on the given topology (a
    /// [`TopologySpec`], or any concrete config via `Into` — e.g. a
    /// `DragonflyConfig`, `FatTreeConfig` or `HyperXConfig`).
    pub fn new(topology: impl Into<TopologySpec>) -> Self {
        Self {
            topology: topology.into(),
            routing: RoutingSpec::Minimal,
            traffic: TrafficSpec::UniformRandom,
            schedule: LoadSchedule::constant(0.1),
            warmup_ns: 20_000,
            measure_ns: 100_000,
            seed: 1,
            series_bin_ns: None,
            engine_config: None,
            tail_ns: 0,
            workload: None,
            faults: Vec::new(),
            streaming_metrics: false,
        }
    }

    /// Select the routing algorithm.
    pub fn routing(mut self, routing: RoutingSpec) -> Self {
        self.routing = routing;
        self
    }

    /// Select the traffic pattern.
    pub fn traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Use a constant offered load.
    pub fn offered_load(mut self, load: f64) -> Self {
        self.schedule = LoadSchedule::constant(load);
        self
    }

    /// Run a closed-loop workload at intensity 1.0 instead of an open-loop
    /// traffic pattern.
    pub fn workload(self, workload: WorkloadSpec) -> Self {
        self.workload_at(workload, 1.0)
    }

    /// Run a closed-loop workload with an explicit message-count intensity
    /// multiplier (may exceed 1.0).
    pub fn workload_at(mut self, workload: WorkloadSpec, intensity: f64) -> Self {
        self.workload = Some((workload, intensity));
        self
    }

    /// Inject faults (link/router kills and restores) during the run.
    pub fn faults(mut self, faults: Vec<FaultSpecEntry>) -> Self {
        self.faults = faults;
        self
    }

    /// Use an arbitrary offered-load schedule (dynamic-load experiments).
    pub fn schedule(mut self, schedule: LoadSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Warmup period excluded from measurement.
    pub fn warmup_ns(mut self, warmup_ns: SimTime) -> Self {
        self.warmup_ns = warmup_ns;
        self
    }

    /// Measurement-window length.
    pub fn measure_ns(mut self, measure_ns: SimTime) -> Self {
        self.measure_ns = measure_ns;
        self
    }

    /// RNG seed (controls traffic, exploration and arbitration-independent
    /// reproducibility).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Unmeasured tail after the measurement window: traffic keeps flowing
    /// so the window is not biased by an emptying network.
    pub fn tail_ns(mut self, tail_ns: SimTime) -> Self {
        self.tail_ns = tail_ns;
        self
    }

    /// Record a time series with the given bin width (enables
    /// [`SimulationBuilder::run_with_series`]).
    pub fn series_bin_ns(mut self, bin_ns: u64) -> Self {
        self.series_bin_ns = Some(bin_ns);
        self
    }

    /// Collect latency statistics with the log-binned streaming sketch
    /// instead of the exact sample vector: metrics memory stays bounded no
    /// matter how many packets are delivered, quantiles are within one
    /// sketch bucket (≲ 1.6 % relative) of exact, and sharded runs remain
    /// bit-for-bit identical to single-shard runs. The scale benches and
    /// the `[metrics] mode = "streaming"` scenario knob use this.
    pub fn streaming_metrics(mut self, streaming: bool) -> Self {
        self.streaming_metrics = streaming;
        self
    }

    /// Override the engine (hardware) configuration. The number of virtual
    /// channels is still forced to the routing algorithm's requirement.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = Some(config);
        self
    }

    /// Select the conservative-parallel shard count (results are identical
    /// for every value; only wall-clock speed and thread usage change).
    pub fn shards(mut self, shards: dragonfly_engine::config::ShardKind) -> Self {
        self.engine_config
            .get_or_insert_with(Default::default)
            .shards = shards;
        self
    }

    /// The total simulated time of the run.
    pub fn total_ns(&self) -> SimTime {
        self.warmup_ns + self.measure_ns + self.tail_ns
    }

    /// Capture the builder as a serialisable [`crate::spec::ExperimentSpec`]
    /// (the reverse of [`crate::spec::ExperimentSpec::to_builder`]), e.g. to
    /// save a programmatically built experiment as a scenario file.
    pub fn to_spec(&self, name: &str) -> crate::spec::ExperimentSpec {
        // Closed-loop runs serialise their intensity back into `load`
        // (schedules are open-loop only and would fail validation).
        let (load, schedule) = match &self.workload {
            Some((_, intensity)) => (Some(*intensity), None),
            None => (None, Some(self.schedule.clone())),
        };
        crate::spec::ExperimentSpec {
            name: name.to_string(),
            topology: self.topology,
            routing: self.routing,
            traffic: self.traffic,
            workload: self.workload.as_ref().map(|(w, _)| w.clone()),
            load,
            schedule,
            warmup_ns: self.warmup_ns,
            measure_ns: self.measure_ns,
            tail_ns: self.tail_ns,
            seed: Some(self.seed),
            series_bin_ns: self.series_bin_ns,
            engine: self.engine_config,
            faults: self.faults.clone(),
            metrics: self.streaming_metrics.then_some(crate::spec::MetricsSpec {
                mode: crate::spec::MetricsMode::Streaming,
            }),
        }
    }

    fn build_engine(&self) -> Engine<MetricsCollector> {
        let topo = self.topology.build();
        let algorithm = self.routing.build();
        let mut cfg = self.engine_config.unwrap_or_default();
        cfg.num_vcs = algorithm.num_vcs();
        let end = self.total_ns();
        // Closed-loop runs compile their task programs against the
        // topology before it is moved into the engine; open-loop runs
        // build the pattern injector instead.
        let mut programs = None;
        let injector: Box<dyn TrafficInjector> = match &self.workload {
            Some((workload, intensity)) => {
                programs = Some(
                    workload
                        .compile(&topo, *intensity)
                        .expect("workload specs are validated before running"),
                );
                Box::new(EmptyInjector)
            }
            None => Box::new(PatternInjector::new(
                &topo,
                &cfg,
                self.traffic.build(&topo, self.seed ^ 0xA5A5_5A5A),
                self.schedule.clone(),
                end,
                self.seed,
            )),
        };
        let mut collector = if self.streaming_metrics {
            MetricsCollector::streaming(self.warmup_ns, self.warmup_ns + self.measure_ns)
        } else {
            MetricsCollector::new(self.warmup_ns, self.warmup_ns + self.measure_ns)
        };
        if let Some(bin) = self.series_bin_ns {
            collector = collector.with_series(bin);
        }
        let mut engine = Engine::new(
            topo,
            cfg,
            algorithm.as_ref(),
            injector,
            collector,
            self.seed,
        );
        if let Some(programs) = programs {
            engine.install_workload(programs);
        }
        if !self.faults.is_empty() {
            let schedule = compile_faults(&self.faults, engine.topology())
                .expect("fault entries are validated before running");
            engine.install_faults(&schedule);
        }
        engine
    }

    fn report_from(
        &self,
        engine: &mut Engine<MetricsCollector>,
        wall_seconds: f64,
    ) -> SimulationReport {
        let stats = engine.stats();
        let cfg = *engine.config();
        let nodes = engine.topology().num_nodes();
        // Merge the per-shard collectors (a single-shard engine merges
        // trivially); quantile queries need the merged sample set anyway.
        let mut collector = engine.merged_observer();
        let memory_bytes = (engine.memory_bytes() + collector.memory_bytes()) as u64;
        let window_ns = collector.window_ns();
        let throughput =
            collector
                .throughput
                .normalized(window_ns, nodes, cfg.injection_bytes_per_ns());
        // Closed-loop completion metrics (all zero for open-loop runs).
        let ranks_finished = collector.ranks_finished;
        let (job_completion_us, collective_skew_us) = if ranks_finished > 0 {
            (
                collector.job_end_max_ns as f64 / 1_000.0,
                collector
                    .job_end_max_ns
                    .saturating_sub(collector.job_end_min_ns) as f64
                    / 1_000.0,
            )
        } else {
            (0.0, 0.0)
        };
        let recovery_time_us = match (
            self.faults.iter().map(FaultSpecEntry::at_ns).min(),
            collector.series.as_ref(),
        ) {
            (Some(fault_at_ns), Some(series)) => recovery_time_us(series, fault_at_ns),
            _ => 0.0,
        };
        SimulationReport {
            routing: self.routing.label(),
            traffic: match &self.workload {
                Some((workload, _)) => workload.label(),
                None => self.traffic.label(),
            },
            offered_load: match &self.workload {
                Some((_, intensity)) => *intensity,
                None => self.schedule.peak_load(),
            },
            window_ns,
            packets_generated: collector.generated_in_window,
            packets_delivered: collector.latency.count() as u64,
            throughput,
            mean_latency_us: collector.latency.mean_us(),
            median_latency_us: collector.latency.median_ns() as f64 / 1_000.0,
            q1_latency_us: collector.latency.q1_ns() as f64 / 1_000.0,
            q3_latency_us: collector.latency.q3_ns() as f64 / 1_000.0,
            p95_latency_us: collector.latency.p95_ns() as f64 / 1_000.0,
            p99_latency_us: collector.latency.p99_ns() as f64 / 1_000.0,
            max_latency_us: collector.latency.max_ns() as f64 / 1_000.0,
            mean_hops: collector.hops.mean(),
            fraction_below_2us: collector.latency.fraction_below(2_000),
            wall_seconds,
            events_processed: stats.events,
            job_completion_us,
            ranks_finished,
            phase_completion_us: collector
                .phase_end_ns
                .iter()
                .map(|&ns| ns as f64 / 1_000.0)
                .collect(),
            barrier_wait_us: collector.barrier_wait_ns as f64 / 1_000.0,
            collective_skew_us,
            dropped_packets: collector.dropped_total,
            retransmits: collector.retransmits_total,
            unreachable_pairs: collector.gave_up_pairs.len() as u64,
            recovery_time_us,
            memory_bytes,
        }
    }

    /// Run the engine to the builder's stopping rule: open-loop runs stop
    /// at the wall-clock boundary, closed-loop runs drain their task
    /// programs (capped at the same boundary so a deadlocked program
    /// cannot hang the simulation).
    fn run_engine(&self, engine: &mut Engine<MetricsCollector>) {
        if self.workload.is_some() {
            engine.run_to_drain(self.total_ns());
        } else {
            engine.run_until(self.total_ns());
        }
    }

    /// Run the simulation and return the measurement report.
    pub fn run(self) -> SimulationReport {
        let started = Instant::now();
        let mut engine = self.build_engine();
        self.run_engine(&mut engine);
        let wall = started.elapsed().as_secs_f64();
        self.report_from(&mut engine, wall)
    }

    /// Stepped execution with optional mid-run state capture and optional
    /// resume from an earlier capture — the machinery behind the CLI's
    /// `--checkpoint-every` and `--resume-from` flags.
    ///
    /// Works on any engine configuration — sequential, sharded, or
    /// pipelined. Each step boundary is a globally consistent cut (every
    /// shard completes its windows up to the boundary before the engine
    /// returns), and the snapshot is stored in canonical
    /// partition-independent form, so a checkpoint taken at `shards = N`
    /// resumes bit-identically at `shards = M` for any `M`, pipeline on
    /// or off.
    ///
    /// `sink` receives the engine snapshot and the merged collector at
    /// every `checkpoint_every_ns` boundary strictly before the end of
    /// the run. When `resume` is given, the engine and collector are
    /// restored before running; the continued run is bit-for-bit
    /// identical to an uninterrupted one (pinned by the
    /// `checkpoint_resume` differential suite).
    pub fn run_resumable(
        self,
        resume: Option<(
            &dragonfly_engine::checkpoint::EngineCheckpoint,
            &MetricsCollector,
        )>,
        checkpoint_every_ns: Option<SimTime>,
        mut sink: impl FnMut(&dragonfly_engine::checkpoint::EngineCheckpoint, &MetricsCollector),
    ) -> Result<SimulationReport, String> {
        let started = Instant::now();
        let mut engine = self.build_engine();
        if let Some((ck, collector)) = resume {
            engine.restore(ck);
            engine.seed_observer(collector.clone());
        }
        let total = self.total_ns();
        match checkpoint_every_ns {
            None => self.run_engine(&mut engine),
            Some(every) => {
                let every = every.max(1);
                let mut t = engine.now();
                while t < total {
                    t = t.saturating_add(every).min(total);
                    if self.workload.is_some() {
                        engine.run_to_drain(t);
                    } else {
                        engine.run_until(t);
                    }
                    // A drained closed-loop run stops advancing long before
                    // its drain cap; keeping on stepping would rewrite an
                    // identical snapshot at every remaining boundary.
                    if self.workload.is_some() && !engine.has_pending_events() {
                        break;
                    }
                    if t < total {
                        let snapshot = engine.checkpoint();
                        let observer = engine.merged_observer();
                        sink(&snapshot, &observer);
                    }
                }
            }
        }
        let wall = started.elapsed().as_secs_f64();
        Ok(self.report_from(&mut engine, wall))
    }

    /// Run the simulation and return both the report and the recorded time
    /// series (requires [`SimulationBuilder::series_bin_ns`]).
    pub fn run_with_series(mut self) -> (SimulationReport, TimeSeries) {
        if self.series_bin_ns.is_none() {
            self.series_bin_ns = Some(10_000);
        }
        let started = Instant::now();
        let mut engine = self.build_engine();
        self.run_engine(&mut engine);
        let wall = started.elapsed().as_secs_f64();
        let report = self.report_from(&mut engine, wall);
        let series = engine
            .into_observer()
            .series
            .expect("series collection was enabled above");
        (report, series)
    }
}

/// Latency-recovery time after the first fault, in µs, from the run's
/// time series: the pre-fault mean latency is the baseline; recovery is
/// reached at the first non-empty bin at/after the fault whose mean
/// latency is within 10 % of the baseline. A run that never recovers
/// counts the whole remaining series. 0.0 when the fault precedes any
/// delivery (no baseline to recover to).
fn recovery_time_us(series: &dragonfly_metrics::timeseries::TimeSeries, fault_at_ns: u64) -> f64 {
    let width = series.bin_width_ns();
    let fault_bin = (fault_at_ns / width) as usize;
    let (mut packets, mut latency_sum) = (0u64, 0u128);
    for idx in 0..fault_bin.min(series.len()) {
        let bin = series.bin(idx);
        packets += bin.packets;
        latency_sum += bin.latency_sum_ns;
    }
    if packets == 0 {
        return 0.0;
    }
    let baseline_ns = latency_sum as f64 / packets as f64;
    for idx in fault_bin..series.len() {
        let bin = series.bin(idx);
        if bin.packets > 0 {
            let mean_ns = bin.latency_sum_ns as f64 / bin.packets as f64;
            if mean_ns <= 1.1 * baseline_ns {
                let recovered_at = (idx as u64 + 1) * width;
                return recovered_at.saturating_sub(fault_at_ns) as f64 / 1_000.0;
            }
        }
    }
    (series.len() as u64 * width).saturating_sub(fault_at_ns) as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use qadaptive_core::QAdaptiveParams;

    #[test]
    fn minimal_ur_low_load_has_near_theoretical_latency() {
        let report = SimulationBuilder::new(DragonflyConfig::tiny())
            .routing(RoutingSpec::Minimal)
            .traffic(TrafficSpec::UniformRandom)
            .offered_load(0.1)
            .warmup_ns(20_000)
            .measure_ns(40_000)
            .seed(3)
            .run();
        assert!(report.packets_delivered > 100);
        // Zero-load minimal latency on the tiny system is ~0.6-0.9 us;
        // at 10% load it must stay well under 2 us.
        assert!(
            report.mean_latency_us < 2.0,
            "latency {}",
            report.mean_latency_us
        );
        assert!(report.mean_hops <= 3.0 + 1e-9);
        // Throughput roughly tracks the offered load on an uncongested net.
        assert!(report.throughput > 0.05 && report.throughput < 0.15);
    }

    #[test]
    fn qadaptive_runs_end_to_end_on_the_tiny_system() {
        let report = SimulationBuilder::new(DragonflyConfig::tiny())
            .routing(RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()))
            .traffic(TrafficSpec::Adversarial { shift: 1 })
            .offered_load(0.2)
            .warmup_ns(30_000)
            .measure_ns(30_000)
            .seed(5)
            .run();
        assert!(report.packets_delivered > 100);
        assert!(report.throughput > 0.05);
        assert!(report.mean_hops >= 1.0);
    }

    #[test]
    fn run_with_series_produces_bins() {
        let (report, series) = SimulationBuilder::new(DragonflyConfig::tiny())
            .routing(RoutingSpec::UgalG)
            .traffic(TrafficSpec::UniformRandom)
            .offered_load(0.3)
            .warmup_ns(10_000)
            .measure_ns(20_000)
            .series_bin_ns(5_000)
            .seed(9)
            .run_with_series();
        assert!(report.packets_delivered > 0);
        assert!(series.len() >= 4);
        let total: u64 = series.iter().map(|(_, b)| b.packets).sum();
        assert!(total >= report.packets_delivered);
    }

    #[test]
    fn closed_loop_allreduce_reports_completion_metrics() {
        let report = SimulationBuilder::new(DragonflyConfig::tiny())
            .routing(RoutingSpec::UgalG)
            .workload(WorkloadSpec::AllReduce { messages: 2 })
            .warmup_ns(0)
            .measure_ns(10_000_000)
            .seed(7)
            .run();
        assert_eq!(report.ranks_finished, 72, "every rank must finish");
        assert!(report.job_completion_us > 0.0);
        assert!(report.collective_skew_us >= 0.0);
        assert!(report.traffic.contains("AllReduce"));
        assert_eq!(report.offered_load, 1.0);
        // One trailing phase marker per collective.
        assert_eq!(report.phase_completion_us.len(), 1);
        assert!(report.phase_completion_us[0] <= report.job_completion_us);
    }

    #[test]
    fn closed_loop_runs_are_shard_invariant() {
        let make = |shards| {
            SimulationBuilder::new(DragonflyConfig::tiny())
                .routing(RoutingSpec::Minimal)
                .workload_at(
                    WorkloadSpec::Sequence(vec![
                        WorkloadSpec::HaloExchange {
                            phases: 2,
                            messages: 2,
                            compute_ns: 100,
                        },
                        WorkloadSpec::Barrier,
                    ]),
                    2.0,
                )
                .warmup_ns(0)
                .measure_ns(10_000_000)
                .seed(11)
                .shards(shards)
                .run()
        };
        let single = make(dragonfly_engine::config::ShardKind::Single);
        let sharded = make(dragonfly_engine::config::ShardKind::Fixed(3));
        assert_eq!(single.ranks_finished, 72);
        assert_eq!(single.job_completion_us, sharded.job_completion_us);
        assert_eq!(single.phase_completion_us, sharded.phase_completion_us);
        assert_eq!(single.barrier_wait_us, sharded.barrier_wait_us);
        assert_eq!(single.collective_skew_us, sharded.collective_skew_us);
        assert_eq!(single.packets_delivered, sharded.packets_delivered);
        assert!(single.barrier_wait_us > 0.0, "barrier waits are recorded");
    }

    #[test]
    fn same_seed_reproduces_the_same_report() {
        let make = || {
            SimulationBuilder::new(DragonflyConfig::tiny())
                .routing(RoutingSpec::UgalN)
                .traffic(TrafficSpec::UniformRandom)
                .offered_load(0.4)
                .warmup_ns(10_000)
                .measure_ns(20_000)
                .seed(42)
                .run()
        };
        let a = make();
        let b = make();
        assert_eq!(a.packets_delivered, b.packets_delivered);
        assert_eq!(a.mean_latency_us, b.mean_latency_us);
        assert_eq!(a.mean_hops, b.mean_hops);
    }
}
