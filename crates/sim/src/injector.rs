//! Converts a [`TrafficPattern`] and a [`LoadSchedule`] into the
//! time-ordered injection stream consumed by the engine.
//!
//! Every node generates messages at a deterministic inter-arrival interval
//! `packet_bytes / (injection_bandwidth × offered_load)` (the paper's
//! definition of offered load), with a uniformly random initial phase so
//! the nodes do not inject in lockstep. The offered load may change over
//! time according to the schedule (Figure 8).

use dragonfly_engine::config::EngineConfig;
use dragonfly_engine::injector::{Injection, TrafficInjector};
use dragonfly_engine::time::SimTime;
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::{AnyTopology, Topology};
use dragonfly_traffic::pattern::TrafficPattern;
use dragonfly_traffic::schedule::LoadSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pull-based injection stream over all nodes of the system.
pub struct PatternInjector {
    pattern: Box<dyn TrafficPattern>,
    schedule: LoadSchedule,
    rng: StdRng,
    /// Per-node next generation time, as a min-heap of (time, node).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Fractional remainders so non-integer inter-arrival intervals do not
    /// drift (kept per node).
    residual: Vec<f64>,
    packet_bytes: f64,
    injection_bytes_per_ns: f64,
    /// No messages are generated at or after this time.
    end_ns: SimTime,
    generated: u64,
}

impl PatternInjector {
    /// Create an injector for every node of `topo`.
    pub fn new(
        topo: &AnyTopology,
        cfg: &EngineConfig,
        pattern: Box<dyn TrafficPattern>,
        schedule: LoadSchedule,
        end_ns: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap = BinaryHeap::with_capacity(topo.num_nodes());
        let initial_load = schedule.load_at(0);
        for node in topo.nodes() {
            // Random phase within the first inter-arrival interval (or the
            // first microsecond when the schedule starts idle).
            let interval = if initial_load > 0.0 {
                cfg.interarrival_ns(initial_load)
            } else {
                1_000.0
            };
            let phase = rng.gen_range(0.0..interval.max(1.0));
            heap.push(Reverse((phase as u64, node.0)));
        }
        Self {
            pattern,
            schedule,
            rng,
            heap,
            residual: vec![0.0; topo.num_nodes()],
            packet_bytes: cfg.packet_bytes as f64,
            injection_bytes_per_ns: cfg.injection_bytes_per_ns(),
            end_ns,
            generated: 0,
        }
    }

    /// Messages generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn interval_at(&self, now: SimTime) -> Option<f64> {
        let load = self.schedule.load_at(now);
        if load <= 0.0 {
            None
        } else {
            Some(self.packet_bytes / (self.injection_bytes_per_ns * load))
        }
    }
}

impl TrafficInjector for PatternInjector {
    fn next_injection(&mut self) -> Option<Injection> {
        loop {
            let Reverse((time, node_raw)) = self.heap.pop()?;
            let node = NodeId(node_raw);
            if time >= self.end_ns {
                // Generation horizon reached for this node; drop it. Other
                // nodes may still have earlier events pending.
                continue;
            }
            // Schedule this node's next generation; a zero offered load
            // generates nothing and re-checks at the next schedule change.
            match self.interval_at(time) {
                Some(interval) => {
                    let exact = interval + self.residual[node.index()];
                    let step = exact.floor().max(1.0);
                    self.residual[node.index()] = exact - step;
                    self.heap.push(Reverse((time + step as u64, node_raw)));
                }
                None => {
                    if let Some(next) = self.schedule.next_change_after(time) {
                        self.heap.push(Reverse((next, node_raw)));
                    }
                    continue;
                }
            }
            let dst = self.pattern.destination(node, &mut self.rng);
            self.generated += 1;
            return Some(Injection {
                time,
                src: node,
                dst,
            });
        }
    }

    fn save_state(&self) -> dragonfly_engine::checkpoint::InjectorCheckpoint {
        // `(time, node)` pairs are unique, so the heap's content — stored
        // sorted for a canonical representation — fully determines the pop
        // order on restore. Patterns are construction-time-seeded and hold
        // no run-time state, so only the shared RNG stream is saved.
        let mut heap: Vec<(u64, u32)> = self.heap.iter().map(|Reverse(p)| *p).collect();
        heap.sort_unstable();
        dragonfly_engine::checkpoint::InjectorCheckpoint {
            rng: Some(self.rng.state()),
            heap,
            residual: self.residual.clone(),
            counters: vec![self.generated],
        }
    }

    fn load_state(&mut self, state: &dragonfly_engine::checkpoint::InjectorCheckpoint) {
        if let Some(s) = state.rng {
            self.rng = StdRng::from_state(s);
        }
        self.heap = state.heap.iter().map(|&p| Reverse(p)).collect();
        self.residual = state.residual.clone();
        self.generated = state.counters.first().copied().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_traffic::spec::TrafficSpec;

    fn make(load: f64, end_ns: u64) -> PatternInjector {
        let topo: AnyTopology = dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()).into();
        let cfg = EngineConfig::default();
        PatternInjector::new(
            &topo,
            &cfg,
            TrafficSpec::UniformRandom.build(&topo, 1),
            LoadSchedule::constant(load),
            end_ns,
            7,
        )
    }

    #[test]
    fn injections_are_time_ordered_and_bounded() {
        let mut inj = make(0.5, 10_000);
        let mut last = 0;
        let mut count = 0u64;
        while let Some(i) = inj.next_injection() {
            assert!(i.time >= last, "time went backwards");
            assert!(i.time < 10_000);
            assert_ne!(i.src, i.dst);
            last = i.time;
            count += 1;
        }
        assert_eq!(count, inj.generated());
        assert!(count > 0);
    }

    #[test]
    fn generation_rate_matches_the_offered_load() {
        // Load 0.5 on 72 nodes: each node generates a 128-byte packet every
        // 64 ns, so over 100 us we expect ~72 * 100_000/64 packets.
        let mut inj = make(0.5, 100_000);
        let mut count = 0u64;
        while inj.next_injection().is_some() {
            count += 1;
        }
        let expected = 72.0 * 100_000.0 / 64.0;
        let ratio = count as f64 / expected;
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "generated {count}, expected ~{expected}"
        );
    }

    #[test]
    fn load_step_changes_the_rate() {
        let topo: AnyTopology = dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()).into();
        let cfg = EngineConfig::default();
        let mut inj = PatternInjector::new(
            &topo,
            &cfg,
            TrafficSpec::UniformRandom.build(&topo, 1),
            LoadSchedule::step(0.2, 0.8, 50_000),
            100_000,
            3,
        );
        let mut first_half = 0u64;
        let mut second_half = 0u64;
        while let Some(i) = inj.next_injection() {
            if i.time < 50_000 {
                first_half += 1;
            } else {
                second_half += 1;
            }
        }
        // Four times the load → roughly four times the messages.
        let ratio = second_half as f64 / first_half as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn zero_load_generates_nothing() {
        let mut inj = make(0.0, 100_000);
        assert!(inj.next_injection().is_none());
    }
}
