//! Serialisable fault injection — the `[[faults]]` section of scenario
//! files.
//!
//! Each [`FaultSpecEntry`] names one fault event in experiment time
//! (`at_us`): killing or restoring a specific link or router, or killing a
//! seeded random fraction of the global links. [`compile_faults`] turns
//! the entries into the engine's [`FaultSchedule`] against a concrete
//! topology: a link fault downs *both* endpoint ports (so per-shard
//! liveness queries never need remote state), and `random_global_down`
//! draws from the canonical sorted global-link list with its own seed, so
//! the same spec kills the same links on every run, every shard count and
//! every pipeline mode.

use crate::spec::SpecError;
use dragonfly_engine::fault::{CompiledFault, FaultOp, FaultSchedule};
use dragonfly_topology::ids::{Port, RouterId};
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::topology::Neighbor;
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed used by `random_global_down` entries that do not set `fault_seed`.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA_0175;

/// One serialisable fault event (a `[[faults]]` entry in a scenario file).
///
/// `kind` selects the event; the other fields qualify it:
///
/// | `kind` | required fields | effect at `at_us` |
/// |---|---|---|
/// | `"link_down"` | `router`, `port` | down the link behind that port (both ends) |
/// | `"link_up"` | `router`, `port` | restore that link (both ends) |
/// | `"router_down"` | `router` | down the whole router |
/// | `"router_up"` | `router` | restore the router |
/// | `"random_global_down"` | `fraction` (+ optional `fault_seed`) | down a seeded random fraction of all global links |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpecEntry {
    /// Event time in experiment microseconds (quantized to the engine's
    /// lookahead window when installed).
    pub at_us: f64,
    /// Event kind: `link_down`, `link_up`, `router_down`, `router_up` or
    /// `random_global_down`.
    pub kind: String,
    /// Router the fault is anchored at (link/router kinds).
    #[serde(default)]
    pub router: Option<u32>,
    /// Fabric port selecting the link (link kinds).
    #[serde(default)]
    pub port: Option<u16>,
    /// Fraction of global links to kill, in `(0, 1]`
    /// (`random_global_down` only; at least one link is always killed).
    #[serde(default)]
    pub fraction: Option<f64>,
    /// Seed for the random link draw (`random_global_down` only;
    /// defaults to [`DEFAULT_FAULT_SEED`]).
    #[serde(default)]
    pub fault_seed: Option<u64>,
}

impl FaultSpecEntry {
    /// Kill the link behind `router`'s fabric `port` at `at_us`.
    pub fn link_down(at_us: f64, router: u32, port: u16) -> Self {
        Self {
            at_us,
            kind: "link_down".to_string(),
            router: Some(router),
            port: Some(port),
            fraction: None,
            fault_seed: None,
        }
    }

    /// Restore the link behind `router`'s fabric `port` at `at_us`.
    pub fn link_up(at_us: f64, router: u32, port: u16) -> Self {
        Self {
            port: Some(port),
            ..Self::router_event(at_us, "link_up", router)
        }
    }

    /// Kill the whole `router` at `at_us`.
    pub fn router_down(at_us: f64, router: u32) -> Self {
        Self::router_event(at_us, "router_down", router)
    }

    /// Restore the `router` at `at_us`.
    pub fn router_up(at_us: f64, router: u32) -> Self {
        Self::router_event(at_us, "router_up", router)
    }

    /// Kill a seeded random `fraction` of the global links at `at_us`.
    pub fn random_global_down(at_us: f64, fraction: f64, fault_seed: u64) -> Self {
        Self {
            at_us,
            kind: "random_global_down".to_string(),
            router: None,
            port: None,
            fraction: Some(fraction),
            fault_seed: Some(fault_seed),
        }
    }

    fn router_event(at_us: f64, kind: &str, router: u32) -> Self {
        Self {
            at_us,
            kind: kind.to_string(),
            router: Some(router),
            port: None,
            fraction: None,
            fault_seed: None,
        }
    }

    /// The event time in engine nanoseconds.
    pub fn at_ns(&self) -> u64 {
        (self.at_us * 1_000.0).round().max(0.0) as u64
    }

    /// Structural validation independent of any topology (field presence,
    /// ranges, known kinds). [`compile_faults`] additionally checks the
    /// entry against a concrete topology.
    pub fn validate(&self, index: usize) -> Result<(), SpecError> {
        let at =
            |field: &str, msg: String| SpecError(format!("faults[{index}] (`{field}`): {msg}"));
        if !self.at_us.is_finite() || self.at_us < 0.0 {
            return Err(at(
                "at_us",
                format!(
                    "event time must be a non-negative number, got {}",
                    self.at_us
                ),
            ));
        }
        let needs = |field: &str, present: bool| {
            if present {
                Ok(())
            } else {
                Err(at(
                    field,
                    format!("required by kind \"{}\" but missing", self.kind),
                ))
            }
        };
        let forbids = |field: &str, absent: bool| {
            if absent {
                Ok(())
            } else {
                Err(at(
                    field,
                    format!("not allowed with kind \"{}\"", self.kind),
                ))
            }
        };
        match self.kind.as_str() {
            "link_down" | "link_up" => {
                needs("router", self.router.is_some())?;
                needs("port", self.port.is_some())?;
                forbids("fraction", self.fraction.is_none())?;
                forbids("fault_seed", self.fault_seed.is_none())?;
            }
            "router_down" | "router_up" => {
                needs("router", self.router.is_some())?;
                forbids("port", self.port.is_none())?;
                forbids("fraction", self.fraction.is_none())?;
                forbids("fault_seed", self.fault_seed.is_none())?;
            }
            "random_global_down" => {
                needs("fraction", self.fraction.is_some())?;
                forbids("router", self.router.is_none())?;
                forbids("port", self.port.is_none())?;
                if let Some(fraction) = self.fraction {
                    if !(fraction > 0.0 && fraction <= 1.0) {
                        return Err(at("fraction", format!("must be in (0, 1], got {fraction}")));
                    }
                }
            }
            other => {
                return Err(at(
                    "kind",
                    format!(
                        "unknown kind \"{other}\"; legal forms: \
                         link_down/link_up (router + port), \
                         router_down/router_up (router), \
                         random_global_down (fraction [+ fault_seed])"
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Validate a whole `[[faults]]` list (structural checks only).
pub fn validate_faults(entries: &[FaultSpecEntry]) -> Result<(), SpecError> {
    for (index, entry) in entries.iter().enumerate() {
        entry.validate(index)?;
    }
    Ok(())
}

/// Every router-to-router link of the topology once, in canonical order
/// (smaller `(router, port)` endpoint first), restricted to `kind`.
fn canonical_links(topo: &AnyTopology, kind: PortKind) -> Vec<(RouterId, Port, RouterId, Port)> {
    let mut links = Vec::new();
    for r in 0..topo.num_routers() {
        let router = RouterId(r as u32);
        for p in 0..topo.radix(router) {
            let port = Port::from_index(p);
            if topo.port_kind(router, port) != kind {
                continue;
            }
            if let Neighbor::Router {
                router: peer,
                port: peer_port,
            } = topo.neighbor(router, port)
            {
                if (router.index(), p) < (peer.index(), peer_port.index()) {
                    links.push((router, port, peer, peer_port));
                }
            }
        }
    }
    links
}

/// Both-endpoint port ops for one link, so each shard answers liveness
/// queries from purely local state.
fn link_ops(
    router: RouterId,
    port: Port,
    peer: RouterId,
    peer_port: Port,
    down: bool,
) -> [FaultOp; 2] {
    if down {
        [
            FaultOp::PortDown { router, port },
            FaultOp::PortDown {
                router: peer,
                port: peer_port,
            },
        ]
    } else {
        [
            FaultOp::PortUp { router, port },
            FaultOp::PortUp {
                router: peer,
                port: peer_port,
            },
        ]
    }
}

/// Compile `[[faults]]` entries into an engine [`FaultSchedule`] against a
/// concrete topology. Errors name the offending entry, field and the legal
/// forms.
pub fn compile_faults(
    entries: &[FaultSpecEntry],
    topo: &AnyTopology,
) -> Result<FaultSchedule, SpecError> {
    validate_faults(entries)?;
    let mut events: Vec<CompiledFault> = Vec::new();
    for (index, entry) in entries.iter().enumerate() {
        let at =
            |field: &str, msg: String| SpecError(format!("faults[{index}] (`{field}`): {msg}"));
        let resolve_router = || -> Result<RouterId, SpecError> {
            let r = entry.router.expect("validated above");
            if (r as usize) < topo.num_routers() {
                Ok(RouterId(r))
            } else {
                Err(at(
                    "router",
                    format!(
                        "router {r} does not exist (topology has {} routers)",
                        topo.num_routers()
                    ),
                ))
            }
        };
        let ops: Vec<FaultOp> = match entry.kind.as_str() {
            "link_down" | "link_up" => {
                let router = resolve_router()?;
                let p = entry.port.expect("validated above") as usize;
                let host_ports = topo.host_ports(router);
                let radix = topo.radix(router);
                if p < host_ports || p >= radix {
                    return Err(at(
                        "port",
                        format!(
                            "port {p} is not a fabric port of router {} \
                             (fabric ports are {host_ports}..{radix})",
                            router.index()
                        ),
                    ));
                }
                let port = Port::from_index(p);
                match topo.neighbor(router, port) {
                    Neighbor::Router {
                        router: peer,
                        port: peer_port,
                    } => {
                        link_ops(router, port, peer, peer_port, entry.kind == "link_down").to_vec()
                    }
                    Neighbor::Node(_) => {
                        return Err(at(
                            "port",
                            format!("port {p} leads to a host, not a router link"),
                        ))
                    }
                }
            }
            "router_down" => vec![FaultOp::RouterDown {
                router: resolve_router()?,
            }],
            "router_up" => vec![FaultOp::RouterUp {
                router: resolve_router()?,
            }],
            "random_global_down" => {
                let fraction = entry.fraction.expect("validated above");
                // Dragonfly kills global links; on fabrics without a
                // local/global split every router-router link qualifies.
                let mut links = canonical_links(topo, PortKind::Global);
                if links.is_empty() {
                    links = canonical_links(topo, PortKind::Local);
                }
                if links.is_empty() {
                    return Err(at(
                        "fraction",
                        "topology has no router-to-router links to kill".to_string(),
                    ));
                }
                let kill = ((links.len() as f64 * fraction).ceil() as usize).clamp(1, links.len());
                // Partial Fisher-Yates over the canonical list: the first
                // `kill` slots end up holding the seeded random choice.
                let mut rng = StdRng::seed_from_u64(entry.fault_seed.unwrap_or(DEFAULT_FAULT_SEED));
                for i in 0..kill {
                    let j = rng.gen_range(i..links.len());
                    links.swap(i, j);
                }
                links[..kill]
                    .iter()
                    .flat_map(|&(r, p, peer, peer_port)| link_ops(r, p, peer, peer_port, true))
                    .collect()
            }
            _ => unreachable!("validated above"),
        };
        let at_ns = entry.at_ns();
        match events.iter_mut().find(|e| e.at_ns == at_ns) {
            Some(event) => event.ops.extend(ops),
            None => events.push(CompiledFault { at_ns, ops }),
        }
    }
    events.sort_by_key(|e| e.at_ns);
    Ok(FaultSchedule { events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::Dragonfly;

    fn tiny() -> AnyTopology {
        Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    #[test]
    fn validation_names_the_field_and_the_legal_forms() {
        let mut entry = FaultSpecEntry::link_down(50.0, 0, 5);
        entry.kind = "linkdown".to_string();
        let err = entry.validate(3).unwrap_err().0;
        assert!(err.contains("faults[3]"), "{err}");
        assert!(err.contains("`kind`"), "{err}");
        assert!(err.contains("random_global_down"), "{err}");

        let missing = FaultSpecEntry {
            port: None,
            ..FaultSpecEntry::link_down(50.0, 0, 5)
        };
        let err = missing.validate(0).unwrap_err().0;
        assert!(err.contains("`port`") && err.contains("link_down"), "{err}");

        let negative = FaultSpecEntry {
            at_us: -1.0,
            ..FaultSpecEntry::router_down(0.0, 2)
        };
        assert!(negative.validate(0).unwrap_err().0.contains("`at_us`"));

        let extra = FaultSpecEntry {
            fraction: Some(0.5),
            ..FaultSpecEntry::router_down(1.0, 2)
        };
        let err = extra.validate(0).unwrap_err().0;
        assert!(
            err.contains("`fraction`") && err.contains("not allowed"),
            "{err}"
        );

        let bad_fraction = FaultSpecEntry::random_global_down(1.0, 1.5, 7);
        let err = bad_fraction.validate(0).unwrap_err().0;
        assert!(err.contains("(0, 1]"), "{err}");
    }

    #[test]
    fn link_faults_down_both_endpoints() {
        let topo = tiny();
        let router = RouterId(0);
        let fabric = topo.host_ports(router) as u16;
        let schedule =
            compile_faults(&[FaultSpecEntry::link_down(50.0, 0, fabric)], &topo).unwrap();
        assert_eq!(schedule.events.len(), 1);
        assert_eq!(schedule.events[0].at_ns, 50_000);
        assert_eq!(schedule.events[0].ops.len(), 2, "both ends go down");
        let Neighbor::Router {
            router: peer,
            port: peer_port,
        } = topo.neighbor(router, Port::from_index(fabric as usize))
        else {
            panic!("fabric port leads to a router");
        };
        assert_eq!(
            schedule.events[0].ops[1],
            FaultOp::PortDown {
                router: peer,
                port: peer_port
            }
        );
        // Restoring uses the same both-endpoint expansion.
        let up = compile_faults(&[FaultSpecEntry::link_up(60.0, 0, fabric)], &topo).unwrap();
        assert!(matches!(up.events[0].ops[0], FaultOp::PortUp { .. }));
    }

    #[test]
    fn compile_rejects_bad_targets_with_context() {
        let topo = tiny();
        let err = compile_faults(&[FaultSpecEntry::router_down(1.0, 999)], &topo)
            .unwrap_err()
            .0;
        assert!(
            err.contains("router 999") && err.contains("routers"),
            "{err}"
        );
        let err = compile_faults(&[FaultSpecEntry::link_down(1.0, 0, 0)], &topo)
            .unwrap_err()
            .0;
        assert!(err.contains("not a fabric port"), "{err}");
        let err = compile_faults(&[FaultSpecEntry::link_down(1.0, 0, 200)], &topo)
            .unwrap_err()
            .0;
        assert!(err.contains("fabric ports are"), "{err}");
    }

    #[test]
    fn random_global_down_is_deterministic_per_seed() {
        let topo = tiny();
        let entry = FaultSpecEntry::random_global_down(50.0, 0.05, 11);
        let a = compile_faults(std::slice::from_ref(&entry), &topo).unwrap();
        let b = compile_faults(&[entry], &topo).unwrap();
        assert_eq!(a, b, "same seed, same links");
        let other =
            compile_faults(&[FaultSpecEntry::random_global_down(50.0, 0.05, 12)], &topo).unwrap();
        assert_ne!(a, other, "different seed draws different links");
        // 5 % of tiny's global links, both endpoints per link.
        let globals = canonical_links(&topo, PortKind::Global).len();
        let kill = ((globals as f64 * 0.05).ceil() as usize).max(1);
        assert_eq!(a.events[0].ops.len(), 2 * kill);
    }

    #[test]
    fn entries_at_the_same_time_merge_into_one_event() {
        let topo = tiny();
        let schedule = compile_faults(
            &[
                FaultSpecEntry::router_down(50.0, 3),
                FaultSpecEntry::router_down(50.0, 4),
                FaultSpecEntry::router_up(80.0, 3),
            ],
            &topo,
        )
        .unwrap();
        assert_eq!(schedule.events.len(), 2);
        assert_eq!(schedule.events[0].ops.len(), 2);
        assert_eq!(schedule.events[1].at_ns, 80_000);
    }

    #[test]
    fn fault_entries_round_trip_through_toml_and_json() {
        let entries = vec![
            FaultSpecEntry::link_down(50.0, 0, 5),
            FaultSpecEntry::random_global_down(75.5, 0.1, 42),
        ];
        for entry in &entries {
            let toml_text = toml::to_string(entry).unwrap();
            let back: FaultSpecEntry = toml::from_str(&toml_text).unwrap();
            assert_eq!(&back, entry);
            let json_text = serde_json::to_string(entry).unwrap();
            let back: FaultSpecEntry = serde_json::from_str(&json_text).unwrap();
            assert_eq!(&back, entry);
        }
    }
}
