//! Convergence and dynamic-load studies (Figures 7 and 8 of the paper).
//!
//! Both boil down to running one simulation with a whole-run time series
//! and reporting the per-bin latency or throughput curve.

use crate::spec::ExperimentSpec;
use dragonfly_engine::time::SimTime;
use dragonfly_metrics::report::SimulationReport;
use dragonfly_metrics::timeseries::TimeSeries;
use dragonfly_routing::RoutingSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use serde::{Deserialize, Serialize};

/// The outcome of a convergence / dynamic-load run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceResult {
    /// The aggregate report over the measurement window (the tail of the
    /// run, once converged).
    pub report: SimulationReport,
    /// The whole-run time series.
    pub series: TimeSeries,
    /// Time (µs) at which the latency settled, if it did
    /// (see [`TimeSeries::convergence_bin`]).
    pub convergence_us: Option<f64>,
    /// Number of nodes (needed to normalise throughput curves).
    pub nodes: usize,
    /// Per-node injection bandwidth in bytes/ns.
    pub injection_bytes_per_ns: f64,
}

impl ConvergenceResult {
    /// The latency curve `(time_us, mean_latency_us)`.
    pub fn latency_curve(&self) -> Vec<(f64, f64)> {
        self.series.latency_curve_us()
    }

    /// The throughput curve `(time_us, normalised_throughput)`.
    pub fn throughput_curve(&self) -> Vec<(f64, f64)> {
        self.series
            .throughput_curve(self.nodes, self.injection_bytes_per_ns)
    }
}

/// Run a convergence study described by an [`ExperimentSpec`]: start from
/// an empty network and record how the latency evolves over the whole run.
/// The spec's warmup/measure windows play their usual roles (the aggregate
/// report covers the tail once converged); `series_bin_ns` defaults to
/// 10 µs when unset.
pub fn run_convergence_spec(spec: &ExperimentSpec) -> ConvergenceResult {
    let bin_ns = spec.series_bin_ns.unwrap_or(10_000);
    let mut spec = spec.clone();
    spec.series_bin_ns = Some(bin_ns);
    let (report, series) = spec.run_with_series();
    let convergence_us = series
        .convergence_bin(5, 0.25)
        .map(|bin| bin as f64 * bin_ns as f64 / 1_000.0);
    let nodes = spec.topology.num_nodes();
    ConvergenceResult {
        report,
        series,
        convergence_us,
        nodes,
        injection_bytes_per_ns: spec.engine.unwrap_or_default().injection_bytes_per_ns(),
    }
}

/// Run a convergence study: start from an empty network under a constant
/// (or scheduled) load and record how the latency evolves.
///
/// Thin wrapper over [`run_convergence_spec`], kept for the examples and
/// any code predating [`ExperimentSpec`].
#[allow(clippy::too_many_arguments)]
pub fn run_convergence(
    topology: DragonflyConfig,
    routing: RoutingSpec,
    traffic: TrafficSpec,
    schedule: LoadSchedule,
    duration_ns: SimTime,
    bin_ns: SimTime,
    measure_tail_ns: SimTime,
    seed: u64,
) -> ConvergenceResult {
    run_convergence_spec(&ExperimentSpec {
        name: String::new(),
        topology: topology.into(),
        routing,
        traffic,
        workload: None,
        load: None,
        schedule: Some(schedule),
        warmup_ns: duration_ns.saturating_sub(measure_tail_ns),
        measure_ns: measure_tail_ns.min(duration_ns),
        tail_ns: 0,
        seed: Some(seed),
        series_bin_ns: Some(bin_ns),
        engine: None,
        faults: Vec::new(),
        metrics: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qadaptive_core::QAdaptiveParams;

    #[test]
    fn convergence_run_produces_curves() {
        let result = run_convergence(
            DragonflyConfig::tiny(),
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            TrafficSpec::UniformRandom,
            LoadSchedule::constant(0.3),
            60_000,
            10_000,
            20_000,
            7,
        );
        assert!(result.report.packets_delivered > 0);
        let lat = result.latency_curve();
        let tput = result.throughput_curve();
        assert_eq!(lat.len(), tput.len());
        assert!(lat.len() >= 5);
        // Throughput in every bin is a sane fraction.
        assert!(tput.iter().all(|(_, v)| *v >= 0.0 && *v <= 1.0));
    }

    #[test]
    fn dynamic_load_step_shows_up_in_the_throughput_curve() {
        let result = run_convergence(
            DragonflyConfig::tiny(),
            RoutingSpec::Minimal,
            TrafficSpec::UniformRandom,
            LoadSchedule::step(0.1, 0.4, 40_000),
            80_000,
            10_000,
            20_000,
            3,
        );
        let curve = result.throughput_curve();
        // Average throughput before the step must be clearly below after.
        let before: f64 = curve[1..4].iter().map(|(_, v)| v).sum::<f64>() / 3.0;
        let after: f64 = curve[5..8].iter().map(|(_, v)| v).sum::<f64>() / 3.0;
        assert!(after > before * 2.0, "before={before:.3} after={after:.3}");
    }
}
