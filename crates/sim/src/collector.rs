//! The measurement observer: applies the warmup/measurement-window
//! methodology of the paper and feeds the metric primitives.

use dragonfly_engine::observer::{ShardObserver, SimObserver};
use dragonfly_engine::packet::Packet;
use dragonfly_engine::time::SimTime;
use dragonfly_metrics::histogram::Histogram;
use dragonfly_metrics::latency::LatencyStats;
use dragonfly_metrics::throughput::ThroughputMeter;
use dragonfly_metrics::timeseries::TimeSeries;
use dragonfly_topology::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Collects latency, hop and throughput statistics over a measurement
/// window, plus an optional whole-run time series.
///
/// The collector is a [`ShardObserver`]: a sharded engine clones it per
/// shard and merges the clones afterwards. Every accumulator is an
/// integer sum, count or sample multiset, so the merged result is
/// bit-for-bit identical to a single-shard run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsCollector {
    /// Packets delivered before this time are ignored (warmup).
    pub window_start_ns: SimTime,
    /// Packets delivered at or after this time are ignored.
    pub window_end_ns: SimTime,
    /// Latency samples within the window.
    pub latency: LatencyStats,
    /// Hop-count histogram within the window.
    pub hops: Histogram,
    /// Delivered bytes within the window.
    pub throughput: ThroughputMeter,
    /// Messages generated within the window.
    pub generated_in_window: u64,
    /// Messages generated in total.
    pub generated_total: u64,
    /// Packets delivered in total (any time).
    pub delivered_total: u64,
    /// Optional binned time series over the whole run.
    pub series: Option<TimeSeries>,
    /// Closed-loop: ranks whose task program ran to completion.
    pub ranks_finished: u64,
    /// Closed-loop: when the last rank finished (max across ranks).
    pub job_end_max_ns: SimTime,
    /// Closed-loop: when the first rank finished (`u64::MAX` when none).
    pub job_end_min_ns: SimTime,
    /// Closed-loop: completion time of each phase slot (elementwise max
    /// across ranks; index = phase slot).
    pub phase_end_ns: Vec<SimTime>,
    /// Closed-loop: total ns ranks spent blocked in barrier receives.
    pub barrier_wait_ns: u64,
    /// Packets dropped (fault-killed resources, TTL, exhausted retries).
    pub dropped_total: u64,
    /// NIC retransmissions triggered by drop notifications.
    pub retransmits_total: u64,
    /// Messages abandoned after the retry budget ran out.
    pub gave_up_total: u64,
    /// Distinct `(src, dst)` node pairs with at least one abandoned
    /// message — the report's `unreachable_pairs`. Merging is set union,
    /// so the count is shard-order independent.
    pub gave_up_pairs: BTreeSet<(u32, u32)>,
}

impl MetricsCollector {
    /// Collect over `[window_start_ns, window_end_ns)`.
    pub fn new(window_start_ns: SimTime, window_end_ns: SimTime) -> Self {
        Self::with_latency(window_start_ns, window_end_ns, LatencyStats::new())
    }

    /// Collect over `[window_start_ns, window_end_ns)` with the log-binned
    /// streaming latency sketch instead of the exact sample vector: memory
    /// stays a few KB no matter how many packets are delivered, quantiles
    /// are within one sketch bucket (≲ 1.6% relative) of exact, and shard
    /// merges are integer bin additions — bit-for-bit order independent.
    /// The mode of every shard clone must match, which `ShardObserver`
    /// cloning guarantees.
    pub fn streaming(window_start_ns: SimTime, window_end_ns: SimTime) -> Self {
        Self::with_latency(window_start_ns, window_end_ns, LatencyStats::streaming())
    }

    fn with_latency(
        window_start_ns: SimTime,
        window_end_ns: SimTime,
        latency: LatencyStats,
    ) -> Self {
        Self {
            window_start_ns,
            window_end_ns,
            latency,
            hops: Histogram::new(16),
            throughput: ThroughputMeter::new(),
            generated_in_window: 0,
            generated_total: 0,
            delivered_total: 0,
            series: None,
            ranks_finished: 0,
            job_end_max_ns: 0,
            job_end_min_ns: SimTime::MAX,
            phase_end_ns: Vec::new(),
            barrier_wait_ns: 0,
            dropped_total: 0,
            retransmits_total: 0,
            gave_up_total: 0,
            gave_up_pairs: BTreeSet::new(),
        }
    }

    /// Also record a time series with the given bin width.
    pub fn with_series(mut self, bin_width_ns: u64) -> Self {
        self.series = Some(TimeSeries::new(bin_width_ns));
        self
    }

    /// Length of the measurement window in ns.
    pub fn window_ns(&self) -> SimTime {
        self.window_end_ns.saturating_sub(self.window_start_ns)
    }

    /// Heap footprint of the collected metrics in bytes: latency storage
    /// (sketch bins in streaming mode, the sample vector in exact mode),
    /// the hop histogram and the optional time series. In streaming mode
    /// the total is bounded by sketch size and simulated time — never by
    /// the number of delivered packets.
    pub fn memory_bytes(&self) -> usize {
        self.latency.memory_bytes()
            + self.hops.memory_bytes()
            + self.series.as_ref().map_or(0, |s| s.memory_bytes())
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.window_start_ns && t < self.window_end_ns
    }
}

impl ShardObserver for MetricsCollector {
    fn absorb(&mut self, other: Self) {
        debug_assert_eq!(self.window_start_ns, other.window_start_ns);
        debug_assert_eq!(self.window_end_ns, other.window_end_ns);
        self.latency.merge(&other.latency);
        self.hops.merge(&other.hops);
        self.throughput.merge(&other.throughput);
        self.generated_in_window += other.generated_in_window;
        self.generated_total += other.generated_total;
        self.delivered_total += other.delivered_total;
        match (self.series.as_mut(), other.series) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (None, Some(theirs)) => self.series = Some(theirs),
            _ => {}
        }
        // Max / min / elementwise-max / sum: all order-independent, so
        // merged closed-loop metrics match a single-shard run exactly.
        self.ranks_finished += other.ranks_finished;
        self.job_end_max_ns = self.job_end_max_ns.max(other.job_end_max_ns);
        self.job_end_min_ns = self.job_end_min_ns.min(other.job_end_min_ns);
        if self.phase_end_ns.len() < other.phase_end_ns.len() {
            self.phase_end_ns.resize(other.phase_end_ns.len(), 0);
        }
        for (slot, end) in other.phase_end_ns.iter().enumerate() {
            self.phase_end_ns[slot] = self.phase_end_ns[slot].max(*end);
        }
        self.barrier_wait_ns += other.barrier_wait_ns;
        self.dropped_total += other.dropped_total;
        self.retransmits_total += other.retransmits_total;
        self.gave_up_total += other.gave_up_total;
        self.gave_up_pairs.extend(other.gave_up_pairs);
    }
}

impl SimObserver for MetricsCollector {
    fn packet_generated(&mut self, _packet: &Packet, now: SimTime) {
        self.generated_total += 1;
        if self.in_window(now) {
            self.generated_in_window += 1;
        }
    }

    fn packet_delivered(&mut self, packet: &Packet, now: SimTime) {
        self.delivered_total += 1;
        let latency = packet.latency_ns(now);
        if let Some(series) = &mut self.series {
            series.record(now, latency, packet.size_bytes);
        }
        if self.in_window(now) {
            self.latency.record(latency);
            self.hops.record(packet.hops as usize);
            self.throughput.record(packet.size_bytes);
        }
    }

    fn packet_dropped(&mut self, _packet: &Packet, _now: SimTime) {
        self.dropped_total += 1;
    }

    fn packet_retransmitted(&mut self, _packet: &Packet, _now: SimTime) {
        self.retransmits_total += 1;
    }

    fn message_gave_up(&mut self, src: NodeId, dst: NodeId, _now: SimTime) {
        self.gave_up_total += 1;
        self.gave_up_pairs.insert((src.0, dst.0));
    }

    fn task_phase_completed(&mut self, _node: NodeId, phase: u32, now: SimTime) {
        let slot = phase as usize;
        if self.phase_end_ns.len() <= slot {
            self.phase_end_ns.resize(slot + 1, 0);
        }
        self.phase_end_ns[slot] = self.phase_end_ns[slot].max(now);
    }

    fn task_rank_finished(&mut self, _node: NodeId, now: SimTime) {
        self.ranks_finished += 1;
        self.job_end_max_ns = self.job_end_max_ns.max(now);
        self.job_end_min_ns = self.job_end_min_ns.min(now);
    }

    fn task_blocked_wait(&mut self, _node: NodeId, waited_ns: u64, barrier: bool) {
        if barrier {
            self.barrier_wait_ns += waited_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_engine::packet::RouteInfo;
    use dragonfly_topology::ids::{GroupId, NodeId, RouterId};

    fn packet(created: SimTime, hops: u8) -> Packet {
        Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(1),
            src_router: RouterId(0),
            dst_router: RouterId(0),
            dst_group: GroupId(0),
            src_group: GroupId(0),
            src_slot: 0,
            size_bytes: 128,
            created_ns: created,
            injected_ns: created,
            hops,
            vc: 0,
            route: RouteInfo::default(),
            last_router: None,
            last_out_port: None,
            last_decision_ns: 0,
            pending_decision: None,
        }
    }

    #[test]
    fn warmup_deliveries_are_excluded_from_the_window() {
        let mut c = MetricsCollector::new(1_000, 2_000);
        c.packet_delivered(&packet(0, 3), 500); // warmup
        c.packet_delivered(&packet(900, 3), 1_500); // in window
        c.packet_delivered(&packet(1_900, 3), 2_500); // after window
        assert_eq!(c.delivered_total, 3);
        assert_eq!(c.latency.count(), 1);
        assert_eq!(c.latency.mean_ns(), 600.0);
        assert_eq!(c.throughput.packets(), 1);
        assert_eq!(c.hops.count(), 1);
    }

    #[test]
    fn generation_counting_respects_the_window() {
        let mut c = MetricsCollector::new(100, 200);
        c.packet_generated(&packet(0, 0), 0);
        c.packet_generated(&packet(150, 0), 150);
        c.packet_generated(&packet(250, 0), 250);
        assert_eq!(c.generated_total, 3);
        assert_eq!(c.generated_in_window, 1);
    }

    #[test]
    fn closed_loop_accumulators_merge_order_independently() {
        let mut a = MetricsCollector::new(0, 1_000);
        let mut b = MetricsCollector::new(0, 1_000);
        a.task_phase_completed(NodeId(0), 0, 100);
        a.task_rank_finished(NodeId(0), 400);
        a.task_blocked_wait(NodeId(0), 50, true);
        a.task_blocked_wait(NodeId(0), 99, false); // non-barrier wait
        b.task_phase_completed(NodeId(1), 0, 250);
        b.task_phase_completed(NodeId(1), 1, 300);
        b.task_rank_finished(NodeId(1), 350);
        b.task_blocked_wait(NodeId(1), 25, true);
        a.absorb(b);
        assert_eq!(a.ranks_finished, 2);
        assert_eq!(a.job_end_max_ns, 400);
        assert_eq!(a.job_end_min_ns, 350);
        assert_eq!(a.phase_end_ns, vec![250, 300]);
        assert_eq!(a.barrier_wait_ns, 75);
    }

    #[test]
    fn resilience_accounting_merges_order_independently() {
        let mut a = MetricsCollector::new(0, 1_000);
        let mut b = MetricsCollector::new(0, 1_000);
        a.packet_dropped(&packet(0, 1), 10);
        a.packet_retransmitted(&packet(0, 1), 20);
        a.message_gave_up(NodeId(1), NodeId(2), 30);
        b.packet_dropped(&packet(0, 1), 15);
        b.message_gave_up(NodeId(1), NodeId(2), 35); // same pair, other shard
        b.message_gave_up(NodeId(3), NodeId(4), 40);
        a.absorb(b);
        assert_eq!(a.dropped_total, 2);
        assert_eq!(a.retransmits_total, 1);
        assert_eq!(a.gave_up_total, 3);
        assert_eq!(a.gave_up_pairs.len(), 2, "pair set merges by union");
    }

    #[test]
    fn streaming_collector_merges_shards_bit_for_bit() {
        // Split one delivery stream across three "shards" and absorb in an
        // arbitrary order; the streaming sketch must equal the
        // unpartitioned collector exactly (integer bin addition).
        let mut whole = MetricsCollector::streaming(0, 1_000_000);
        let mut shards = vec![
            MetricsCollector::streaming(0, 1_000_000),
            MetricsCollector::streaming(0, 1_000_000),
            MetricsCollector::streaming(0, 1_000_000),
        ];
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let created = x % 900_000;
            let now = created + x % 90_000;
            let p = packet(created, (x % 6) as u8);
            whole.packet_delivered(&p, now);
            shards[(i % 3) as usize].packet_delivered(&p, now);
        }
        let mut merged = shards.pop().unwrap();
        for s in shards {
            merged.absorb(s);
        }
        assert_eq!(
            serde_json::to_string(&merged.latency).unwrap(),
            serde_json::to_string(&whole.latency).unwrap(),
            "streaming shard merge must be bit-for-bit"
        );
        assert_eq!(merged.delivered_total, whole.delivered_total);
        // Bounded memory: far below what 5k u64 samples would need.
        assert!(merged.memory_bytes() < 64 * 1024);
    }

    #[test]
    fn time_series_covers_the_whole_run() {
        let mut c = MetricsCollector::new(1_000, 2_000).with_series(500);
        c.packet_delivered(&packet(0, 2), 400);
        c.packet_delivered(&packet(0, 2), 1_200);
        c.packet_delivered(&packet(0, 2), 2_600);
        let s = c.series.as_ref().unwrap();
        assert_eq!(s.bin(0).packets, 1);
        assert_eq!(s.bin(2).packets, 1);
        assert_eq!(s.bin(5).packets, 1);
        // Window stats still only include the middle delivery.
        assert_eq!(c.latency.count(), 1);
    }
}
