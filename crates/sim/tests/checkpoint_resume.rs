//! Checkpoint/resume differential tests.
//!
//! The engine-level tests in `dragonfly_engine::checkpoint` pin the raw
//! snapshot contract with scripted traffic and the cheap test router; this
//! file drives the full spec pipeline — pattern injectors, real routing
//! algorithms with learning state, fault schedules, closed-loop workloads
//! and the metrics collector — and asserts that a run interrupted at an
//! arbitrary checkpoint and resumed in a fresh process-equivalent (new
//! engine, state restored from the serialized checkpoint) reproduces the
//! uninterrupted run's report **bit for bit**.

use dragonfly_engine::config::{EngineConfig, ShardKind};
use dragonfly_metrics::report::SimulationReport;
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::checkpoint::RunCheckpoint;
use dragonfly_sim::fault::FaultSpecEntry;
use dragonfly_sim::spec::ExperimentSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use dragonfly_workload::WorkloadSpec;
use qadaptive_core::QAdaptiveParams;

/// A faulted open-loop base spec on the tiny Dragonfly.
fn openloop_spec(routing: RoutingSpec, seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        name: format!("ck-{routing:?}"),
        topology: DragonflyConfig::tiny().into(),
        routing,
        traffic: TrafficSpec::UniformRandom,
        workload: None,
        load: Some(0.3),
        schedule: None,
        warmup_ns: 15_000,
        measure_ns: 30_000,
        tail_ns: 5_000,
        seed: Some(seed),
        series_bin_ns: Some(5_000),
        engine: None,
        faults: vec![
            FaultSpecEntry::random_global_down(20.0, 0.05, 11),
            FaultSpecEntry::router_down(25.0, 1),
            FaultSpecEntry::router_up(40.0, 1),
        ],
        metrics: None,
    }
}

/// A closed-loop AllReduce spec with a mid-collective router kill and
/// restore (exercises NIC retransmits, retry counters and task state
/// across the checkpoint boundary).
fn closedloop_spec(seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        name: "ck-allreduce".to_string(),
        topology: DragonflyConfig::tiny().into(),
        routing: RoutingSpec::UgalG,
        traffic: TrafficSpec::UniformRandom,
        workload: Some(WorkloadSpec::AllReduce { messages: 2 }),
        load: Some(1.0),
        schedule: None,
        warmup_ns: 0,
        measure_ns: 10_000_000,
        tail_ns: 0,
        seed: Some(seed),
        series_bin_ns: None,
        engine: None,
        faults: vec![
            FaultSpecEntry::router_down(5.0, 2),
            FaultSpecEntry::router_up(60.0, 2),
        ],
        metrics: None,
    }
}

/// Full-report equality, every field except the wall clock and the
/// memory estimate (capacity-derived, so a resumed process — whose
/// buffers deserialize at exact length — legitimately reports less than
/// an uninterrupted one whose Vecs grew geometrically).
fn assert_reports_identical(a: &SimulationReport, b: &SimulationReport, label: &str) {
    let strip = |r: &SimulationReport| {
        let mut r = r.clone();
        r.wall_seconds = 0.0;
        r.memory_bytes = 0;
        serde_json::to_string(&r).expect("reports serialize")
    };
    assert_eq!(strip(a), strip(b), "{label}: reports diverged");
}

/// Run uninterrupted, then re-run collecting checkpoints every
/// `every_ns`, then resume from each collected checkpoint (after a JSON
/// round trip, as the CLI would) and require the identical report.
fn pin_resume_equals_uninterrupted(spec: &ExperimentSpec, every_ns: u64, label: &str) {
    let reference = spec.run();
    assert!(
        reference.packets_delivered > 100,
        "{label}: workload too small to pin anything"
    );

    let mut checkpoints: Vec<RunCheckpoint> = Vec::new();
    let stepped = spec
        .run_checkpointed(None, Some(every_ns), |ck| checkpoints.push(ck))
        .expect("stepped run succeeds");
    assert_reports_identical(&reference, &stepped, &format!("{label}: stepped vs plain"));
    assert!(
        checkpoints.len() >= 2,
        "{label}: expected several mid-run checkpoints, got {}",
        checkpoints.len()
    );

    for (i, ck) in checkpoints.iter().enumerate() {
        // The CLI always goes through the file format: round-trip the
        // JSON so serialization is part of what the test pins.
        let ck = RunCheckpoint::from_json(&ck.to_json()).expect("round trip");
        let resumed = spec
            .run_checkpointed(Some(&ck), None, |_| {})
            .unwrap_or_else(|e| panic!("{label}: resume from checkpoint {i} failed: {e}"));
        assert_reports_identical(
            &reference,
            &resumed,
            &format!("{label}: resume from checkpoint {i}"),
        );
    }
}

#[test]
fn openloop_ugal_resume_is_bit_identical_across_faults() {
    let spec = openloop_spec(RoutingSpec::UgalG, 41);
    let reference = spec.run();
    assert!(
        reference.dropped_packets > 0,
        "the fault schedule must actually bite"
    );
    pin_resume_equals_uninterrupted(&spec, 12_000, "ugal+faults");
}

#[test]
fn qadaptive_learning_state_survives_resume() {
    // Q-adaptive carries per-router RNG streams and Q-tables; a resume
    // that failed to restore them would diverge immediately.
    let spec = openloop_spec(RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 42);
    pin_resume_equals_uninterrupted(&spec, 9_000, "qadaptive+faults");
}

#[test]
fn closedloop_allreduce_resume_preserves_retransmit_state() {
    let spec = closedloop_spec(7);
    let reference = spec.run();
    assert!(
        reference.retransmits > 0,
        "the mid-collective router kill must force retransmissions"
    );
    assert_eq!(
        reference.ranks_finished, 72,
        "the restored router must let the collective finish"
    );
    pin_resume_equals_uninterrupted(&spec, 20_000, "allreduce+kill/restore");
}

#[test]
fn streaming_sketch_and_paged_tables_survive_resume() {
    // PR 8's bounded-memory representations ride the v2 checkpoint:
    // log-binned sketch counters in the collector snapshot and sparse
    // `q_rows`-keyed pages in the agent snapshots (threshold 0 forces
    // paging on the tiny topology). Resume must still be bit-identical to
    // the uninterrupted run, including the streamed quantiles.
    use dragonfly_sim::spec::{MetricsMode, MetricsSpec};
    let mut spec = openloop_spec(RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 46);
    spec.metrics = Some(MetricsSpec {
        mode: MetricsMode::Streaming,
    });
    spec.engine = Some(EngineConfig {
        qtable_page_rows_threshold: 0,
        ..Default::default()
    });
    pin_resume_equals_uninterrupted(&spec, 9_000, "streaming+paged");
}

/// Override only the execution mode (shards × pipeline) of a spec,
/// keeping any other engine knobs it already carries.
fn with_engine(mut spec: ExperimentSpec, shards: ShardKind, pipeline: bool) -> ExperimentSpec {
    let mut engine = spec.engine.unwrap_or_default();
    engine.shards = shards;
    engine.pipeline = pipeline;
    spec.engine = Some(engine);
    spec
}

/// The v3 contract: snapshots are partition-independent, so a checkpoint
/// taken under `take` must resume bit-identically under **any** execution
/// mode. Runs the stepped (checkpointing) pass under `take`, then resumes
/// every collected snapshot under each mode in `resume_modes`, comparing
/// all of them against the uninterrupted reference.
fn pin_sharded_matrix(
    base: &ExperimentSpec,
    every_ns: u64,
    take: (ShardKind, bool),
    resume_modes: &[(ShardKind, bool)],
    label: &str,
) {
    let reference = base.run();
    assert!(
        reference.packets_delivered > 100,
        "{label}: workload too small to pin anything"
    );

    let stepped_spec = with_engine(base.clone(), take.0, take.1);
    let mut checkpoints: Vec<RunCheckpoint> = Vec::new();
    let stepped = stepped_spec
        .run_checkpointed(None, Some(every_ns), |ck| checkpoints.push(ck))
        .expect("sharded stepped run succeeds");
    assert_reports_identical(&reference, &stepped, &format!("{label}: stepped vs plain"));
    assert!(
        checkpoints.len() >= 2,
        "{label}: expected several mid-run checkpoints, got {}",
        checkpoints.len()
    );

    for (i, ck) in checkpoints.iter().enumerate() {
        let ck = RunCheckpoint::from_json(&ck.to_json()).expect("round trip");
        for &(shards, pipeline) in resume_modes {
            let resumed = with_engine(base.clone(), shards, pipeline)
                .run_checkpointed(Some(&ck), None, |_| {})
                .unwrap_or_else(|e| {
                    panic!(
                        "{label}: resume from checkpoint {i} at \
                         {shards:?}/pipeline={pipeline} failed: {e}"
                    )
                });
            assert_reports_identical(
                &reference,
                &resumed,
                &format!("{label}: checkpoint {i} resumed at {shards:?}/pipeline={pipeline}"),
            );
        }
    }
}

#[test]
fn sharded_pipelined_checkpoint_resumes_at_any_shard_count() {
    // The acceptance matrix from the issue: a snapshot taken at
    // `--shards 4 --pipeline` (including one straddling the fault window)
    // resumes bit-identically at shards 1, at shards 2 without the
    // pipeline, and at shards 4 with it. The resume specs differ from the
    // checkpointing spec only in execution-mode knobs, which the spec
    // guard deliberately ignores.
    let base = openloop_spec(RoutingSpec::UgalG, 43);
    pin_sharded_matrix(
        &base,
        12_000,
        (ShardKind::Fixed(4), true),
        &[
            (ShardKind::Single, false),
            (ShardKind::Fixed(2), false),
            (ShardKind::Fixed(4), true),
        ],
        "sharded matrix ugal+faults",
    );
}

#[test]
fn sharded_qadaptive_checkpoint_resumes_across_modes() {
    // Q-adaptive adds per-router learning state and cross-shard RL
    // feedback; the snapshot must stay partition-independent with it on.
    let base = openloop_spec(RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 48);
    pin_sharded_matrix(
        &base,
        15_000,
        (ShardKind::Fixed(2), true),
        &[(ShardKind::Single, false), (ShardKind::Fixed(4), true)],
        "sharded matrix qadaptive+faults",
    );
}

#[test]
fn sharded_checkpoints_are_fabric_generic() {
    // The consistent cut is topology-generic: locality domains are
    // fat-tree pods or HyperX rows instead of Dragonfly groups, and the
    // sharded snapshot must still resume exactly under a different mode.
    use dragonfly_topology::{FatTreeConfig, HyperXConfig, TopologySpec};
    let topologies: Vec<TopologySpec> = vec![
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    for topology in topologies {
        let base = ExperimentSpec {
            name: format!("ck-fabric-{topology:?}"),
            topology,
            routing: RoutingSpec::UgalG,
            traffic: TrafficSpec::UniformRandom,
            workload: None,
            load: Some(0.3),
            schedule: None,
            warmup_ns: 12_000,
            measure_ns: 20_000,
            tail_ns: 4_000,
            seed: Some(47),
            series_bin_ns: None,
            engine: None,
            faults: vec![
                FaultSpecEntry::router_down(25.0, 1),
                FaultSpecEntry::router_up(40.0, 1),
            ],
            metrics: None,
        };
        let label = format!("fabric {:?}", base.topology);
        pin_sharded_matrix(
            &base,
            10_000,
            (ShardKind::Fixed(2), true),
            &[(ShardKind::Single, false), (ShardKind::Fixed(4), true)],
            &label,
        );
    }
}

#[test]
fn sharded_closedloop_resume_preserves_midcollective_state() {
    // Mid-collective task state (pending ranks, NIC retransmit timers,
    // retry counters) snapshotted under shards=2+pipeline must resume
    // exactly at shards 1 and 4. Only the first and last snapshots are
    // resumed — the closed-loop run is long and the openloop matrix
    // already sweeps every snapshot.
    let base = closedloop_spec(8);
    let reference = base.run();
    assert!(
        reference.retransmits > 0,
        "the mid-collective router kill must force retransmissions"
    );

    let stepped_spec = with_engine(base.clone(), ShardKind::Fixed(2), true);
    let mut checkpoints: Vec<RunCheckpoint> = Vec::new();
    let stepped = stepped_spec
        .run_checkpointed(None, Some(20_000), |ck| checkpoints.push(ck))
        .expect("sharded closed-loop stepped run succeeds");
    assert_reports_identical(&reference, &stepped, "closedloop sharded: stepped vs plain");
    assert!(checkpoints.len() >= 2, "expected several snapshots");

    let picks = [0, checkpoints.len() - 1];
    for &i in &picks {
        let ck = RunCheckpoint::from_json(&checkpoints[i].to_json()).expect("round trip");
        for (shards, pipeline) in [(ShardKind::Single, false), (ShardKind::Fixed(4), true)] {
            let resumed = with_engine(base.clone(), shards, pipeline)
                .run_checkpointed(Some(&ck), None, |_| {})
                .unwrap_or_else(|e| panic!("closedloop resume {i} at {shards:?} failed: {e}"));
            assert_reports_identical(
                &reference,
                &resumed,
                &format!("closedloop sharded: checkpoint {i} at {shards:?}/{pipeline}"),
            );
        }
    }
}

#[test]
fn resume_under_a_different_spec_is_rejected() {
    let spec = openloop_spec(RoutingSpec::UgalG, 44);
    let mut checkpoints = Vec::new();
    spec.run_checkpointed(None, Some(15_000), |ck| checkpoints.push(ck))
        .expect("stepped run succeeds");
    let mut other = spec.clone();
    other.seed = Some(999);
    let err = other
        .run_checkpointed(Some(&checkpoints[0]), None, |_| {})
        .expect_err("spec mismatch must be rejected");
    assert!(
        err.0.contains("differs"),
        "error explains the mismatch: {err}"
    );
}

#[test]
fn binary_and_json_checkpoint_files_resume_identically() {
    // The cross-format contract behind `--checkpoint-format`: the same
    // snapshot written as binary (v4) and as JSON (v3) must both load
    // back and resume to the exact report of the uninterrupted run —
    // learning state included, so Q-adaptive is the algorithm under test.
    use dragonfly_sim::checkpoint::{CheckpointFormat, BINARY_CHECKPOINT_VERSION};
    let spec = openloop_spec(RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 49);
    let reference = spec.run();

    let mut checkpoints = Vec::new();
    spec.run_checkpointed(None, Some(18_000), |ck| checkpoints.push(ck))
        .expect("stepped run succeeds");
    let ck = checkpoints.last().unwrap();

    let dir = std::env::temp_dir().join("qadaptive-ck-crossformat-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("cross.ckpt");
    let json_path = dir.join("cross.ckpt.json");
    ck.save_format(&bin_path, CheckpointFormat::Binary).unwrap();
    ck.save_format(&json_path, CheckpointFormat::Json).unwrap();
    let bin_len = std::fs::metadata(&bin_path).unwrap().len();
    let json_len = std::fs::metadata(&json_path).unwrap().len();
    assert!(
        bin_len < json_len,
        "binary must be smaller than JSON ({bin_len} vs {json_len} bytes)"
    );

    let from_bin = RunCheckpoint::load(&bin_path).unwrap();
    let from_json = RunCheckpoint::load(&json_path).unwrap();
    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&json_path).ok();
    assert_eq!(from_bin.version, BINARY_CHECKPOINT_VERSION);

    let resumed_bin = spec
        .run_checkpointed(Some(&from_bin), None, |_| {})
        .expect("resume from binary file succeeds");
    let resumed_json = spec
        .run_checkpointed(Some(&from_json), None, |_| {})
        .expect("resume from JSON file succeeds");
    assert_reports_identical(&reference, &resumed_bin, "binary file resume");
    assert_reports_identical(&reference, &resumed_json, "json file resume");
}

#[test]
fn checkpoint_files_round_trip_through_disk() {
    // The persistence path the CLI uses: save the last checkpoint to a
    // file, load it back, resume — identical report.
    let spec = openloop_spec(RoutingSpec::UgalG, 45);
    let reference = spec.run();

    let mut checkpoints = Vec::new();
    spec.run_checkpointed(None, Some(18_000), |ck| checkpoints.push(ck))
        .expect("stepped run succeeds");
    let dir = std::env::temp_dir().join("qadaptive-ck-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.ckpt.json");
    checkpoints.last().unwrap().save(&path).unwrap();

    let loaded = RunCheckpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let resumed = spec
        .run_checkpointed(Some(&loaded), None, |_| {})
        .expect("resume from file succeeds");
    assert_reports_identical(&reference, &resumed, "file round trip");
}
