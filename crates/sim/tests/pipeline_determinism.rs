//! Property-based pipelined-determinism stress tests over the *real*
//! routing algorithms and the full spec → report pipeline.
//!
//! `pipeline_differential` (engine crate) pins the mechanism with the
//! cheap test router; this file drives randomly generated
//! `(topology size, traffic pattern, load, seed)` tuples through **UGAL**
//! and **Q-adaptive** — adaptive decisions, per-router RNGs, Q-table
//! updates carried by cross-shard RL feedback — and asserts that every
//! `(shards ∈ {1, 2, 4}, pipeline on/off)` combination reproduces the
//! sequential report bit for bit, every field except wall-clock timing.
//!
//! The generator is a deterministic `proptest`-style harness (no proptest
//! crate in the offline build): a master seed draws each case and every
//! assertion message carries the case tuple, so a failure is immediately
//! reproducible without shrinking.

use dragonfly_engine::config::ShardKind;
use dragonfly_engine::EngineConfig;
use dragonfly_metrics::report::SimulationReport;
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::spec::ExperimentSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated stress case (everything that varies between runs).
#[derive(Debug, Clone, Copy)]
struct Case {
    topo: (usize, usize, usize),
    traffic: TrafficSpec,
    load: f64,
    seed: u64,
}

fn draw_case(rng: &mut StdRng) -> Case {
    let topo = [(2usize, 4usize, 2usize), (3, 4, 2)][rng.gen_range(0..2usize)];
    let groups = topo.1 * topo.2 + 1;
    let traffic = match rng.gen_range(0..3) {
        0 => TrafficSpec::UniformRandom,
        _ => TrafficSpec::Adversarial {
            shift: 1 + rng.gen_range(0..groups - 1),
        },
    };
    Case {
        topo,
        traffic,
        load: [0.15, 0.3, 0.45][rng.gen_range(0..3usize)],
        seed: rng.gen_range(1..1_000_000),
    }
}

fn spec_for(case: &Case, routing: RoutingSpec) -> ExperimentSpec {
    let (p, a, h) = case.topo;
    ExperimentSpec {
        name: String::new(),
        topology: DragonflyConfig { p, a, h }.into(),
        routing,
        traffic: case.traffic,
        workload: None,
        load: Some(case.load),
        schedule: None,
        warmup_ns: 12_000,
        measure_ns: 20_000,
        tail_ns: 4_000,
        seed: Some(case.seed),
        series_bin_ns: None,
        engine: None,
        faults: Vec::new(),
        metrics: None,
    }
}

fn run_mode(mut spec: ExperimentSpec, shards: ShardKind, pipeline: bool) -> SimulationReport {
    spec.engine = Some(EngineConfig {
        shards,
        pipeline,
        ..Default::default()
    });
    spec.run()
}

/// Every report field except wall-clock timing, compared exactly.
fn assert_identical(reference: &SimulationReport, got: &SimulationReport, label: &str) {
    assert_eq!(
        reference.packets_generated, got.packets_generated,
        "{label}"
    );
    assert_eq!(
        reference.packets_delivered, got.packets_delivered,
        "{label}"
    );
    assert_eq!(reference.throughput, got.throughput, "{label}");
    assert_eq!(reference.mean_latency_us, got.mean_latency_us, "{label}");
    assert_eq!(
        reference.median_latency_us, got.median_latency_us,
        "{label}"
    );
    assert_eq!(reference.q1_latency_us, got.q1_latency_us, "{label}");
    assert_eq!(reference.q3_latency_us, got.q3_latency_us, "{label}");
    assert_eq!(reference.p95_latency_us, got.p95_latency_us, "{label}");
    assert_eq!(reference.p99_latency_us, got.p99_latency_us, "{label}");
    assert_eq!(reference.max_latency_us, got.max_latency_us, "{label}");
    assert_eq!(reference.mean_hops, got.mean_hops, "{label}");
    assert_eq!(
        reference.fraction_below_2us, got.fraction_below_2us,
        "{label}"
    );
    assert_eq!(
        reference.events_processed, got.events_processed,
        "{label}: even the event count matches"
    );
    // Closed-loop completion metrics (all zero on open-loop runs) are part
    // of the bit-for-bit contract too.
    assert_eq!(reference.ranks_finished, got.ranks_finished, "{label}");
    assert_eq!(
        reference.job_completion_us, got.job_completion_us,
        "{label}"
    );
    assert_eq!(
        reference.phase_completion_us, got.phase_completion_us,
        "{label}"
    );
    assert_eq!(reference.barrier_wait_us, got.barrier_wait_us, "{label}");
    assert_eq!(
        reference.collective_skew_us, got.collective_skew_us,
        "{label}"
    );
    // Resilience accounting (all zero on fault-free runs) must survive
    // the pipeline bit-for-bit too.
    assert_eq!(reference.dropped_packets, got.dropped_packets, "{label}");
    assert_eq!(reference.retransmits, got.retransmits, "{label}");
    assert_eq!(
        reference.unreachable_pairs, got.unreachable_pairs,
        "{label}"
    );
    assert_eq!(reference.recovery_time_us, got.recovery_time_us, "{label}");
}

/// The property, instantiated per algorithm: pipelined sharded runs of
/// random workloads reproduce the sequential report exactly.
fn property(routing: RoutingSpec, master_seed: u64, cases: usize) {
    let mut gen_rng = StdRng::seed_from_u64(master_seed);
    for case_no in 0..cases {
        let case = draw_case(&mut gen_rng);
        let base = spec_for(&case, routing);
        let reference = run_mode(base.clone(), ShardKind::Single, false);
        assert!(
            reference.packets_delivered > 100,
            "case {case_no} {case:?}: workload too small to pin anything"
        );
        for shards in [2usize, 4] {
            for pipeline in [false, true] {
                let got = run_mode(base.clone(), ShardKind::Fixed(shards), pipeline);
                assert_identical(
                    &reference,
                    &got,
                    &format!("case {case_no} {case:?} shards={shards} pipeline={pipeline}"),
                );
            }
        }
        // `shards = 1` must ignore the pipeline flag entirely.
        let single_pipelined = run_mode(base, ShardKind::Single, true);
        assert_identical(
            &reference,
            &single_pipelined,
            &format!("case {case_no} {case:?} single+pipeline"),
        );
    }
}

#[test]
fn ugal_random_workloads_are_pipeline_invariant() {
    property(RoutingSpec::UgalG, 0xA11CE, 3);
}

#[test]
fn qadaptive_random_workloads_are_pipeline_invariant() {
    // Q-adaptive is the adversarial case: every committed hop sends RL
    // feedback upstream (cross-shard for global hops) and Q-table updates
    // do not commute, so any overlap-induced reordering would surface in
    // the latency distribution.
    property(
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
        0xBEE5,
        3,
    );
}

#[test]
fn fattree_and_hyperx_workloads_are_pipeline_invariant() {
    // The determinism contract is topology-generic: the same
    // shards × pipeline sweep must hold when the locality domains are
    // fat-tree pods or HyperX rows instead of Dragonfly groups, for both
    // UGAL and Q-adaptive (cross-shard RL feedback over core/column
    // links).
    use dragonfly_topology::{FatTreeConfig, HyperXConfig, TopologySpec};
    let topologies: Vec<TopologySpec> = vec![
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    for topology in topologies {
        for (routing, traffic, seed) in [
            (RoutingSpec::UgalG, TrafficSpec::UniformRandom, 404u64),
            (
                RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                TrafficSpec::Adversarial { shift: 1 },
                405,
            ),
        ] {
            let base = ExperimentSpec {
                name: String::new(),
                topology,
                routing,
                traffic,
                workload: None,
                load: Some(0.3),
                schedule: None,
                warmup_ns: 12_000,
                measure_ns: 20_000,
                tail_ns: 4_000,
                seed: Some(seed),
                series_bin_ns: None,
                engine: None,
                faults: Vec::new(),
                metrics: None,
            };
            let reference = run_mode(base.clone(), ShardKind::Single, false);
            assert!(
                reference.packets_delivered > 100,
                "{topology:?}/{routing:?}: workload too small to pin anything"
            );
            for shards in [2usize, 4] {
                for pipeline in [false, true] {
                    let got = run_mode(base.clone(), ShardKind::Fixed(shards), pipeline);
                    assert_identical(
                        &reference,
                        &got,
                        &format!("{topology:?}/{routing:?} shards={shards} pipeline={pipeline}"),
                    );
                }
            }
        }
    }
}

#[test]
fn closed_loop_workloads_are_pipeline_invariant() {
    // Task wakeups (TaskWake/TaskRecv) must commit identically under the
    // overlapped-window pipeline: the same collectives-and-halo tuples as
    // the shard suite, with the pipeline toggled on top of the shard sweep.
    use dragonfly_topology::{FatTreeConfig, HyperXConfig, Topology, TopologySpec};
    use dragonfly_workload::WorkloadSpec;
    let topologies: Vec<TopologySpec> = vec![
        DragonflyConfig { p: 2, a: 4, h: 2 }.into(),
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    let workloads = [
        WorkloadSpec::AllReduce { messages: 2 },
        WorkloadSpec::Sequence(vec![
            WorkloadSpec::HaloExchange {
                phases: 2,
                messages: 2,
                compute_ns: 100,
            },
            WorkloadSpec::Barrier,
        ]),
    ];
    for topology in topologies {
        for workload in &workloads {
            let base = ExperimentSpec {
                name: String::new(),
                topology,
                routing: RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                traffic: TrafficSpec::UniformRandom,
                workload: Some(workload.clone()),
                load: Some(1.0),
                schedule: None,
                warmup_ns: 0,
                measure_ns: 10_000_000,
                tail_ns: 0,
                seed: Some(71),
                series_bin_ns: None,
                engine: None,
                faults: Vec::new(),
                metrics: None,
            };
            let reference = run_mode(base.clone(), ShardKind::Single, false);
            assert_eq!(
                reference.ranks_finished,
                topology.build().num_nodes() as u64,
                "{topology:?}/{workload:?}: every rank must finish"
            );
            for shards in [2usize, 4] {
                for pipeline in [false, true] {
                    let got = run_mode(base.clone(), ShardKind::Fixed(shards), pipeline);
                    assert_identical(
                        &reference,
                        &got,
                        &format!("{topology:?}/{workload:?} shards={shards} pipeline={pipeline}"),
                    );
                }
            }
        }
    }
}

#[test]
fn faulted_workloads_are_pipeline_invariant() {
    // The overlapped-window pipeline may speculate across the very window
    // in which a fault fires; rollback must still reproduce the sequential
    // faulted run exactly, for both open-loop link loss and a mid-collective
    // router kill-and-restore, on all three fabrics.
    use dragonfly_sim::fault::FaultSpecEntry;
    use dragonfly_topology::{FatTreeConfig, HyperXConfig, TopologySpec};
    use dragonfly_workload::WorkloadSpec;
    let topologies: Vec<TopologySpec> = vec![
        DragonflyConfig { p: 2, a: 4, h: 2 }.into(),
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    for topology in topologies {
        // Open-loop: random global-link loss under Q-adaptive.
        let open = ExperimentSpec {
            name: String::new(),
            topology,
            routing: RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            traffic: TrafficSpec::UniformRandom,
            workload: None,
            load: Some(0.3),
            schedule: None,
            warmup_ns: 12_000,
            measure_ns: 20_000,
            tail_ns: 4_000,
            seed: Some(97),
            series_bin_ns: Some(5_000),
            engine: None,
            faults: vec![FaultSpecEntry::random_global_down(18.0, 0.05, 13)],
            metrics: None,
        };
        open.validate().expect("fault schedule compiles everywhere");
        // Closed-loop: a router dies mid-collective and comes back.
        let mut closed = open.clone();
        closed.routing = RoutingSpec::UgalG;
        closed.workload = Some(WorkloadSpec::AllReduce { messages: 2 });
        closed.load = Some(1.0);
        closed.schedule = None;
        closed.warmup_ns = 0;
        closed.measure_ns = 10_000_000;
        closed.tail_ns = 0;
        closed.faults = vec![
            FaultSpecEntry::router_down(8.0, 2),
            FaultSpecEntry::router_up(40.0, 2),
        ];
        closed
            .validate()
            .expect("fault schedule compiles everywhere");
        for base in [open, closed] {
            let reference = run_mode(base.clone(), ShardKind::Single, false);
            for shards in [2usize, 4] {
                for pipeline in [false, true] {
                    let got = run_mode(base.clone(), ShardKind::Fixed(shards), pipeline);
                    assert_identical(
                        &reference,
                        &got,
                        &format!(
                            "faulted {topology:?} workload={:?} shards={shards} \
                             pipeline={pipeline}",
                            base.workload
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn auto_sharding_with_pipelining_matches_single() {
    // `Auto` resolves to whatever the host offers; with pipelining on
    // (the default) the result still must not depend on it.
    let case = Case {
        topo: (2, 4, 2),
        traffic: TrafficSpec::Adversarial { shift: 2 },
        load: 0.35,
        seed: 77,
    };
    let base = spec_for(&case, RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()));
    let reference = run_mode(base.clone(), ShardKind::Single, false);
    let auto = run_mode(base, ShardKind::Auto, true);
    assert_identical(&reference, &auto, "auto+pipeline");
}

#[test]
fn streaming_metrics_and_paged_tables_are_pipeline_invariant() {
    // PR 8's bounded-memory representations must not perturb a single bit
    // of the report: log-binned latency sketches (integer bin merges) and
    // lazily paged Q-tables (forced on by a zero paging threshold) each
    // reproduce the dense/exact sequential run across the full
    // shards × pipeline sweep. `memory_bytes` is deliberately outside the
    // bit-for-bit contract — arena and page-table capacities legitimately
    // vary with the shard count and the storage representation.
    use dragonfly_sim::spec::{MetricsMode, MetricsSpec};
    let run = |spec: &ExperimentSpec, shards: ShardKind, pipeline: bool, threshold: usize| {
        let mut spec = spec.clone();
        spec.engine = Some(EngineConfig {
            shards,
            pipeline,
            qtable_page_rows_threshold: threshold,
            ..Default::default()
        });
        spec.run()
    };
    for (routing, seed) in [
        (
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            811u64,
        ),
        (RoutingSpec::QRouting { max_q: 3 }, 812),
    ] {
        let mut base = spec_for(
            &Case {
                topo: (2, 4, 2),
                traffic: TrafficSpec::UniformRandom,
                load: 0.3,
                seed,
            },
            routing,
        );
        base.metrics = Some(MetricsSpec {
            mode: MetricsMode::Streaming,
        });
        // Dense tables (threshold above any table in this tiny topology).
        let reference = run(&base, ShardKind::Single, false, usize::MAX);
        assert!(
            reference.packets_delivered > 100,
            "{routing:?}: workload too small to pin anything"
        );
        assert!(
            reference.memory_bytes > 0,
            "{routing:?}: report must carry the memory rollup"
        );
        for threshold in [usize::MAX, 0] {
            for shards in [1usize, 2, 4] {
                for pipeline in [false, true] {
                    let kind = if shards == 1 {
                        ShardKind::Single
                    } else {
                        ShardKind::Fixed(shards)
                    };
                    let got = run(&base, kind, pipeline, threshold);
                    assert_identical(
                        &reference,
                        &got,
                        &format!(
                            "{routing:?} paged={} shards={shards} pipeline={pipeline}",
                            threshold == 0
                        ),
                    );
                }
            }
        }
        // The paged representation must actually be cheaper at rest: a
        // freshly thresholded run touches only the rows traffic visited.
        let paged = run(&base, ShardKind::Single, false, 0);
        assert!(paged.memory_bytes > 0, "{routing:?}");
    }
}

#[test]
fn pipeline_flag_round_trips_through_scenario_files() {
    // The spec layer must carry `engine.pipeline` losslessly in both
    // encodings, and files that predate the field must default to `true`.
    let mut spec = spec_for(
        &Case {
            topo: (2, 4, 2),
            traffic: TrafficSpec::UniformRandom,
            load: 0.2,
            seed: 5,
        },
        RoutingSpec::UgalG,
    );
    spec.engine = Some(EngineConfig {
        pipeline: false,
        shards: ShardKind::Fixed(2),
        ..Default::default()
    });
    assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
    assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);
    // A pre-pipeline scenario file (no `pipeline` key) gets the default.
    let legacy = ExperimentSpec::from_toml(
        "load = 0.2\nwarmup_ns = 5000\nmeasure_ns = 5000\n[topology]\np = 2\na = 4\nh = 2\n\
         [engine]\npacket_bytes = 128\nlink_bytes_per_ns = 4.0\nlocal_latency_ns = 30\n\
         global_latency_ns = 300\nhost_latency_ns = 10\nrouter_latency_ns = 100\n\
         vc_buffer_packets = 20\noutput_queue_packets = 20\nnum_vcs = 5\n\
         shards = { Fixed = 2 }\n",
    )
    .unwrap();
    assert!(
        legacy.engine.unwrap().pipeline,
        "scenario files without the key default to the pipelined engine"
    );
}
