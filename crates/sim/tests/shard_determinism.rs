//! Cross-shard determinism on the real routing algorithms.
//!
//! The engine-level `shard_differential` test pins the contract with the
//! cheap test router; this file drives seeded **UGAL** and **Q-adaptive**
//! workloads — adaptive decisions, per-router RNGs, Q-table updates fed by
//! cross-shard RL feedback — through the full spec/metrics pipeline and
//! asserts that `shards = 2` and `shards = 4` reproduce the `shards = 1`
//! report bit for bit (every field except wall-clock timings).

use dragonfly_engine::config::ShardKind;
use dragonfly_engine::EngineConfig;
use dragonfly_metrics::report::SimulationReport;
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::spec::ExperimentSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::TopologySpec;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

fn spec(routing: RoutingSpec, traffic: TrafficSpec, seed: u64) -> ExperimentSpec {
    spec_on(DragonflyConfig::tiny().into(), routing, traffic, seed)
}

fn spec_on(
    topology: TopologySpec,
    routing: RoutingSpec,
    traffic: TrafficSpec,
    seed: u64,
) -> ExperimentSpec {
    ExperimentSpec {
        name: String::new(),
        topology,
        routing,
        traffic,
        workload: None,
        load: Some(0.35),
        schedule: None,
        warmup_ns: 15_000,
        measure_ns: 25_000,
        tail_ns: 5_000,
        seed: Some(seed),
        series_bin_ns: None,
        engine: None,
        faults: Vec::new(),
        metrics: None,
    }
}

fn run_sharded(mut spec: ExperimentSpec, shards: ShardKind) -> SimulationReport {
    spec.engine = Some(EngineConfig {
        shards,
        ..Default::default()
    });
    spec.run()
}

fn assert_identical(single: &SimulationReport, sharded: &SimulationReport, label: &str) {
    assert_eq!(
        single.packets_generated, sharded.packets_generated,
        "{label}"
    );
    assert_eq!(
        single.packets_delivered, sharded.packets_delivered,
        "{label}"
    );
    assert_eq!(single.throughput, sharded.throughput, "{label}");
    assert_eq!(single.mean_latency_us, sharded.mean_latency_us, "{label}");
    assert_eq!(
        single.median_latency_us, sharded.median_latency_us,
        "{label}"
    );
    assert_eq!(single.q1_latency_us, sharded.q1_latency_us, "{label}");
    assert_eq!(single.q3_latency_us, sharded.q3_latency_us, "{label}");
    assert_eq!(single.p95_latency_us, sharded.p95_latency_us, "{label}");
    assert_eq!(single.p99_latency_us, sharded.p99_latency_us, "{label}");
    assert_eq!(single.max_latency_us, sharded.max_latency_us, "{label}");
    assert_eq!(single.mean_hops, sharded.mean_hops, "{label}");
    assert_eq!(
        single.fraction_below_2us, sharded.fraction_below_2us,
        "{label}"
    );
    assert_eq!(
        single.events_processed, sharded.events_processed,
        "{label}: even the event count matches"
    );
    // Closed-loop completion metrics (all zero on open-loop runs) are part
    // of the bit-for-bit contract too.
    assert_eq!(single.ranks_finished, sharded.ranks_finished, "{label}");
    assert_eq!(
        single.job_completion_us, sharded.job_completion_us,
        "{label}"
    );
    assert_eq!(
        single.phase_completion_us, sharded.phase_completion_us,
        "{label}"
    );
    assert_eq!(single.barrier_wait_us, sharded.barrier_wait_us, "{label}");
    assert_eq!(
        single.collective_skew_us, sharded.collective_skew_us,
        "{label}"
    );
    // Resilience accounting (all zero on fault-free runs) must be
    // bit-for-bit too: drops, retransmissions, abandoned pairs and the
    // series-derived recovery time.
    assert_eq!(single.dropped_packets, sharded.dropped_packets, "{label}");
    assert_eq!(single.retransmits, sharded.retransmits, "{label}");
    assert_eq!(
        single.unreachable_pairs, sharded.unreachable_pairs,
        "{label}"
    );
    assert_eq!(single.recovery_time_us, sharded.recovery_time_us, "{label}");
}

#[test]
fn ugal_workload_is_shard_count_invariant() {
    for (traffic, seed) in [
        (TrafficSpec::UniformRandom, 21u64),
        (TrafficSpec::Adversarial { shift: 1 }, 22),
    ] {
        let base = spec(RoutingSpec::UgalG, traffic, seed);
        let single = run_sharded(base.clone(), ShardKind::Single);
        assert!(single.packets_delivered > 200, "workload too small to pin");
        for shards in [2usize, 4] {
            let sharded = run_sharded(base.clone(), ShardKind::Fixed(shards));
            assert_identical(
                &single,
                &sharded,
                &format!("UGALg/{} shards={shards}", single.traffic),
            );
        }
    }
}

#[test]
fn qadaptive_workload_is_shard_count_invariant() {
    // Q-adaptive is the adversarial case for parallel determinism: every
    // committed hop sends RL feedback upstream (cross-shard for global
    // hops), and Q-table updates do not commute — any reordering would
    // change routing decisions and show up in the latency distribution.
    for (traffic, seed) in [
        (TrafficSpec::UniformRandom, 31u64),
        (TrafficSpec::Adversarial { shift: 2 }, 32),
    ] {
        let base = spec(
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            traffic,
            seed,
        );
        let single = run_sharded(base.clone(), ShardKind::Single);
        assert!(single.packets_delivered > 200, "workload too small to pin");
        for shards in [2usize, 4] {
            let sharded = run_sharded(base.clone(), ShardKind::Fixed(shards));
            assert_identical(
                &single,
                &sharded,
                &format!("Q-adaptive/{} shards={shards}", single.traffic),
            );
        }
    }
}

#[test]
fn streaming_sketch_is_shard_count_invariant() {
    // With the log-binned latency sketch the shard merge is elementwise
    // integer bin addition, so the streamed quantiles must be bit-identical
    // for every shard count — the property that lets the 100k-node scale
    // runs stream statistics instead of hoarding per-packet samples.
    use dragonfly_sim::spec::{MetricsMode, MetricsSpec};
    let mut base = spec(
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
        TrafficSpec::UniformRandom,
        33,
    );
    base.metrics = Some(MetricsSpec {
        mode: MetricsMode::Streaming,
    });
    let single = run_sharded(base.clone(), ShardKind::Single);
    assert!(single.packets_delivered > 200, "workload too small to pin");
    assert!(single.memory_bytes > 0, "memory rollup must be reported");
    for shards in [2usize, 4] {
        let sharded = run_sharded(base.clone(), ShardKind::Fixed(shards));
        assert_identical(&single, &sharded, &format!("streaming shards={shards}"));
    }
}

#[test]
fn fattree_and_hyperx_workloads_are_shard_count_invariant() {
    // Domain-partitioned sharding must be bit-for-bit exact when the
    // domains are fat-tree pods or HyperX rows, under both UGAL and
    // Q-adaptive.
    use dragonfly_topology::{FatTreeConfig, HyperXConfig};
    let topologies: Vec<TopologySpec> = vec![
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    for topology in topologies {
        for (routing, seed) in [
            (RoutingSpec::UgalG, 51u64),
            (RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 52),
        ] {
            let base = spec_on(topology, routing, TrafficSpec::UniformRandom, seed);
            let single = run_sharded(base.clone(), ShardKind::Single);
            assert!(single.packets_delivered > 100, "workload too small to pin");
            for shards in [2usize, 4] {
                let sharded = run_sharded(base.clone(), ShardKind::Fixed(shards));
                assert_identical(
                    &single,
                    &sharded,
                    &format!("{topology:?}/{routing:?} shards={shards}"),
                );
            }
        }
    }
}

#[test]
fn closed_loop_workloads_are_shard_count_invariant() {
    // Collectives and halo exchanges exercise the task-wakeup event
    // classes (TaskWake / TaskRecv) across shard boundaries; the full
    // report — including every completion-time field — must match the
    // single-shard run on all three topologies.
    use dragonfly_topology::{FatTreeConfig, HyperXConfig, Topology};
    use dragonfly_workload::WorkloadSpec;
    let topologies: Vec<TopologySpec> = vec![
        DragonflyConfig::tiny().into(),
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    let workloads = [
        WorkloadSpec::AllReduce { messages: 2 },
        WorkloadSpec::Sequence(vec![
            WorkloadSpec::HaloExchange {
                phases: 2,
                messages: 2,
                compute_ns: 100,
            },
            WorkloadSpec::Barrier,
        ]),
    ];
    for topology in topologies {
        for workload in &workloads {
            for (routing, seed) in [
                (RoutingSpec::UgalG, 61u64),
                (RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 62),
            ] {
                let mut base = spec_on(topology, routing, TrafficSpec::UniformRandom, seed);
                base.workload = Some(workload.clone());
                base.load = Some(1.0);
                base.warmup_ns = 0;
                base.measure_ns = 10_000_000;
                base.tail_ns = 0;
                let single = run_sharded(base.clone(), ShardKind::Single);
                assert_eq!(
                    single.ranks_finished,
                    topology.build().num_nodes() as u64,
                    "{topology:?}/{workload:?}: every rank must finish"
                );
                assert!(single.job_completion_us > 0.0);
                for shards in [2usize, 4] {
                    let sharded = run_sharded(base.clone(), ShardKind::Fixed(shards));
                    assert_identical(
                        &single,
                        &sharded,
                        &format!("{topology:?}/{routing:?}/{workload:?} shards={shards}"),
                    );
                }
            }
        }
    }
}

#[test]
fn faulted_workloads_are_shard_count_invariant() {
    // Fault injection must not weaken the determinism contract: the same
    // mid-run link loss plus a router kill-and-restore produces identical
    // reports — drops, retransmissions and recovery time included — for
    // every shard count on all three fabrics.
    use dragonfly_sim::fault::FaultSpecEntry;
    use dragonfly_topology::{FatTreeConfig, HyperXConfig};
    let topologies: Vec<TopologySpec> = vec![
        DragonflyConfig::tiny().into(),
        FatTreeConfig { k: 4 }.into(),
        HyperXConfig {
            p: 2,
            rows: 4,
            cols: 4,
        }
        .into(),
    ];
    let faults = vec![
        FaultSpecEntry::random_global_down(20.0, 0.05, 7),
        FaultSpecEntry::router_down(25.0, 1),
        FaultSpecEntry::router_up(35.0, 1),
    ];
    for topology in topologies {
        for (routing, seed) in [
            (RoutingSpec::UgalG, 81u64),
            (RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()), 82),
        ] {
            let mut base = spec_on(topology, routing, TrafficSpec::UniformRandom, seed);
            base.faults = faults.clone();
            base.series_bin_ns = Some(5_000);
            base.validate().expect("fault schedule compiles everywhere");
            let single = run_sharded(base.clone(), ShardKind::Single);
            assert!(single.packets_delivered > 100, "workload too small to pin");
            assert!(
                single.dropped_packets > 0,
                "{topology:?}/{routing:?}: a router kill mid-run must drop packets"
            );
            for shards in [2usize, 4] {
                let sharded = run_sharded(base.clone(), ShardKind::Fixed(shards));
                assert_identical(
                    &single,
                    &sharded,
                    &format!("faulted {topology:?}/{routing:?} shards={shards}"),
                );
            }
        }
    }
}

#[test]
fn five_percent_link_loss_survives_all_six_algorithms() {
    // Acceptance pin for the fault layer: a Dragonfly run that loses 5% of
    // its global links mid-run completes under the full paper lineup —
    // MIN, Valiant, UGAL-G, UGAL-N, PAR and Q-adaptive — and every
    // algorithm stays bit-for-bit identical across shards {1, 2, 4} with
    // the pipelined and lockstep engines alike. Conservation of the killed
    // traffic (`generated == delivered + dropped + outstanding`) is
    // asserted inside the engine on every run.
    use dragonfly_sim::fault::FaultSpecEntry;
    for (idx, routing) in RoutingSpec::paper_lineup().into_iter().enumerate() {
        let mut base = spec(routing, TrafficSpec::UniformRandom, 90 + idx as u64);
        base.faults = vec![FaultSpecEntry::random_global_down(20.0, 0.05, 17)];
        base.series_bin_ns = Some(5_000);
        base.validate().expect("fault schedule compiles");
        let single = run_sharded(base.clone(), ShardKind::Single);
        assert!(
            single.packets_delivered > 100,
            "{routing:?}: run must complete despite the link loss"
        );
        for shards in [2usize, 4] {
            for pipeline in [true, false] {
                let mut spec = base.clone();
                spec.engine = Some(EngineConfig {
                    shards: ShardKind::Fixed(shards),
                    pipeline,
                    ..Default::default()
                });
                assert_identical(
                    &single,
                    &spec.run(),
                    &format!("5% link loss {routing:?} shards={shards} pipeline={pipeline}"),
                );
            }
        }
    }
}

#[test]
fn auto_sharding_matches_single_too() {
    // `Auto` resolves to whatever the host offers; the result must not
    // depend on it.
    let base = spec(
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
        TrafficSpec::UniformRandom,
        33,
    );
    let single = run_sharded(base.clone(), ShardKind::Single);
    let auto = run_sharded(base, ShardKind::Auto);
    assert_identical(&single, &auto, "auto");
}
