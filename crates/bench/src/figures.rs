//! The paper-figure registry: every table and figure of the paper as a
//! *data-driven* experiment description.
//!
//! Each figure is a [`FigurePlan`] built from the serialisable
//! [`SweepSpec`] / [`ExperimentSpec`] types of `dragonfly-sim` — the same
//! types scenario files use — plus shared rendering. The eight
//! `src/bin/*.rs` binaries and the `qadaptive-cli figure` subcommand are
//! thin wrappers over [`main_for`] / [`run_plan`]; none of them constructs
//! a sweep by hand.

use crate::cache::{run_convergence_cached, run_sweep_cached, ResultCache};
use crate::harness::{apply_engine_overrides, markdown_table, BenchArgs, RunMode};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::convergence::ConvergenceResult;
use dragonfly_sim::fault::FaultSpecEntry;
use dragonfly_sim::spec::{ExperimentSpec, MetricsMode, MetricsSpec, SweepSpec};
use dragonfly_sim::sweep::SweepResult;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use dragonfly_workload::WorkloadSpec;
use qadaptive_core::table::QValueTable;
use qadaptive_core::{QAdaptiveParams, QTable, TwoLevelQTable};
use serde::{Serialize, Value};

/// Which columns a sweep panel prints (mirrors the legacy binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnSet {
    /// Load sweeps: throughput + mean/p99 latency + hops (Figure 5).
    LoadSweep,
    /// Latency distributions: quartiles + tail percentiles (Figure 6).
    Distribution,
    /// Case study: mean/median/p95/p99 + throughput + hops (Figure 9).
    CaseStudy,
    /// Ablation: throughput + mean latency + hops (Section 2.3.2).
    Ablation,
    /// Closed-loop workloads: job-completion time + skew + barrier wait.
    CompletionTime,
    /// Fault-injection sweeps: completion time + drop/retransmit counters
    /// + series-derived recovery time.
    Resilience,
    /// Bounded-memory scale runs: throughput + streamed latency stats +
    /// the end-of-run `memory_bytes` rollup.
    Scale,
}

/// Which curve a convergence panel prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveKind {
    /// Mean latency over time, every 3rd bin (Figure 7).
    Latency,
    /// System throughput over time, every 2nd bin (Figure 8).
    Throughput,
}

/// A figure, fully described as data.
pub enum FigurePlan {
    /// One or more sweep panels sharing a column layout.
    Sweeps {
        /// `(panel title, grid)` pairs, run and printed in order.
        panels: Vec<(String, SweepSpec)>,
        /// Table layout.
        columns: ColumnSet,
        /// Append a per-panel saturation-throughput summary (Figure 5).
        saturation_summary: bool,
    },
    /// Whole-run time-series studies (Figures 7 and 8).
    Convergence {
        /// `(panel title, run)` pairs; every spec has `series_bin_ns` set.
        runs: Vec<(String, ExperimentSpec)>,
        /// Which curve to print.
        curve: CurveKind,
    },
    /// A table computed without simulation (Table 1, the memory claim).
    Static {
        /// Rendered human-readable table.
        text: String,
        /// The same table as CSV.
        csv: String,
    },
}

/// Catalog entry for one reproducible artefact.
pub struct Figure {
    /// Canonical id (`fig5`, `table1`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Reference numbers quoted from the paper, printed after the run.
    pub notes: &'static str,
}

/// Every artefact the registry can produce, in paper order.
pub fn catalog() -> Vec<Figure> {
    vec![
        Figure {
            id: "table1",
            title: "Table 1: Dragonfly configurations",
            notes: "Paper values: 1,056-node (p=4, a=8, h=4, k=15, g=33, m=264) and \
                    2,550-node (p=5, a=10, h=5, k=19, g=51, m=510).",
        },
        Figure {
            id: "fig5",
            title: "Figure 5: 1,056-node Dragonfly, load sweeps",
            notes: "Paper reference points: UR max load — Q-adaptive 88.25% throughput \
                    (+6.6%/+10.5%/+8.3% vs UGALg/UGALn/PAR, −3.3% vs MIN); \
                    ADV+1 — Q-adaptive 48.2% (beats VALn by 3%); ADV+4 — Q-adaptive 44.9% \
                    (1.7% below VALn), mean hops 4.27 at load 0.5 vs 3.06 under ADV+1.",
        },
        Figure {
            id: "fig6",
            title: "Figure 6: latency distribution on the 1,056-node Dragonfly",
            notes: "Paper reference points: UR — Q-adaptive p99 = 1.42 us (5.9x / 3.8x / 18.2x \
                    below UGALg / UGALn / PAR); ADV+1 — Q-adaptive p99 = 5.10 us; ADV+4 — \
                    Q-adaptive p99 = 8.08 us and 81% of packets under 2 us vs 64% for PAR.",
        },
        Figure {
            id: "fig7",
            title: "Figure 7: Q-adaptive convergence from an empty network",
            notes: "Paper reference: Q-adaptive converges within 500 us of a cold start.",
        },
        Figure {
            id: "fig8",
            title: "Figure 8: Q-adaptive under varying offered loads",
            notes: "Paper reference points: after the UR 0.4->0.8 step Q-adaptive re-converges \
                    in ~156 us (faster than the 200 us cold start); load decreases are followed \
                    almost instantly; ADV+4 steps take ~440-455 us.",
        },
        Figure {
            id: "fig9",
            title: "Figure 9: 2,550-node Dragonfly case study",
            notes: "Paper reference points: UR — Q-adaptive mean 0.84 us / p99 1.67 us (near the \
                    MIN optimum); ADV+1 — mean 0.96 us, beating VALn (1.75 us); 3D Stencil — mean \
                    0.62 us (1.77x below UGALg); Many-to-Many — mean 1.15 us; Random Neighbors — \
                    near-optimal 1.04 us vs MIN 1.01 us.",
        },
        Figure {
            id: "maxq",
            title: "Section 2.3.2 ablation: Q-routing maxQ threshold",
            notes: "Expected shape (paper): small maxQ is best under UR and poor under ADV+i; \
                    larger maxQ helps ADV+1 but never fixes ADV+4 (local-link congestion); \
                    Q-adaptive handles all three with one configuration.",
        },
        Figure {
            id: "jct",
            title: "Closed-loop AllReduce: intensity vs job-completion time",
            notes: "Not a paper figure: a closed-loop companion to Figure 5. Each rank runs a \
                    recursive-doubling AllReduce and the tables report job-completion time \
                    (slowest rank), rank skew and barrier wait per routing algorithm on the \
                    Dragonfly, fat-tree and HyperX systems.",
        },
        Figure {
            id: "resilience",
            title: "Resilience: failed-global-link fraction vs completion and recovery",
            notes: "Not a paper figure: a robustness companion. Each panel kills a random \
                    fraction of the global links 5 us into a closed-loop AllReduce and reports \
                    job-completion time, drop/retransmission counts and the time-series \
                    recovery point for the six routing algorithms on the Dragonfly, fat-tree \
                    and HyperX systems.",
        },
        Figure {
            id: "memory",
            title: "Per-router Q-table memory (Section 4 claim: the two-level table saves 50%)",
            notes: "",
        },
        Figure {
            id: "scale",
            title: "Bounded-memory scale: 110,976-node Dragonfly, streamed metrics",
            notes: "Not a paper figure: the ROADMAP's 100x-scale check. UR on a p=16, a=24, \
                    h=12 Dragonfly (289 groups, 6,936 routers) with the streaming latency \
                    sketch and lazily paged two-level Q-tables; MIN gives the no-table \
                    memory floor and Q-adaptive the learned-table rollup. The memory \
                    column is the end-of-run memory_bytes estimate (Q-tables + packet \
                    arena + metric accumulators); a dense two-level allocation at this \
                    scale would be ~13 GiB per run before the first packet moved.",
        },
    ]
}

/// Resolve user-supplied ids (`5`, `fig5`, `table_memory`, ...).
pub fn canonical_id(id: &str) -> Option<&'static str> {
    let id = id.trim().to_ascii_lowercase();
    let canonical = match id.as_str() {
        "5" | "fig5" => "fig5",
        "6" | "fig6" => "fig6",
        "7" | "fig7" => "fig7",
        "8" | "fig8" => "fig8",
        "9" | "fig9" => "fig9",
        "table1" | "1" => "table1",
        "memory" | "table_memory" => "memory",
        "maxq" | "ablation_maxq" => "maxq",
        "jct" | "allreduce_jct" | "completion" => "jct",
        "resilience" | "faults" | "fault" => "resilience",
        "scale" | "scale100k" | "bounded_memory" => "scale",
        _ => return None,
    };
    Some(canonical)
}

/// Look up the catalog entry for an id.
pub fn figure(id: &str) -> Option<Figure> {
    let id = canonical_id(id)?;
    catalog().into_iter().find(|f| f.id == id)
}

/// The two Dragonfly systems of the paper, with display names.
fn paper_systems() -> [(&'static str, DragonflyConfig); 2] {
    [
        ("1,056-node", DragonflyConfig::paper_1056()),
        ("2,550-node", DragonflyConfig::paper_2550()),
    ]
}

/// Build the named, ready-to-run experiment descriptions of every paper
/// artefact at the given settings. This is the single place in the
/// repository where the paper's experiment grids are written down.
pub fn paper_specs(id: &str, args: &BenchArgs) -> Option<FigurePlan> {
    let plan = match canonical_id(id)? {
        "table1" => static_table1(),
        "fig5" => {
            let mut panels = Vec::new();
            for (traffic, loads, panel) in [
                (TrafficSpec::UniformRandom, args.ur_loads(), "Figure 5(a-c)"),
                (
                    TrafficSpec::Adversarial { shift: 1 },
                    args.adv_loads(),
                    "Figure 5(d-f)",
                ),
                (
                    TrafficSpec::Adversarial { shift: 4 },
                    args.adv_loads(),
                    "Figure 5(g-i)",
                ),
            ] {
                let mut sweep = SweepSpec::paper_lineup(
                    DragonflyConfig::paper_1056(),
                    traffic,
                    loads,
                    args.warmup_ns(),
                    args.measure_ns(),
                );
                sweep.name = format!("fig5/{}", traffic.label());
                sweep.seed = Some(args.seed);
                panels.push((format!("{panel} — {}", traffic.label()), sweep));
            }
            FigurePlan::Sweeps {
                panels,
                columns: ColumnSet::LoadSweep,
                saturation_summary: true,
            }
        }
        "fig6" => {
            let mut panels = Vec::new();
            for (traffic, load, panel) in [
                (TrafficSpec::UniformRandom, 0.8, "Figure 6(a) UR @ 0.8"),
                (
                    TrafficSpec::Adversarial { shift: 1 },
                    0.45,
                    "Figure 6(b) ADV+1 @ 0.45",
                ),
                (
                    TrafficSpec::Adversarial { shift: 4 },
                    0.45,
                    "Figure 6(c) ADV+4 @ 0.45",
                ),
            ] {
                let mut sweep = SweepSpec::paper_lineup(
                    DragonflyConfig::paper_1056(),
                    traffic,
                    vec![load],
                    args.warmup_ns(),
                    args.measure_ns(),
                );
                sweep.name = format!("fig6/{}", traffic.label());
                sweep.seed = Some(args.seed);
                panels.push((panel.to_string(), sweep));
            }
            FigurePlan::Sweeps {
                panels,
                columns: ColumnSet::Distribution,
                saturation_summary: false,
            }
        }
        "fig7" => {
            // The paper simulates ~750 us; quick mode uses 300 us which is
            // enough to see the latency surge and the settling.
            let (duration_ns, bin_ns) = match args.mode {
                RunMode::Quick => (300_000u64, 10_000u64),
                RunMode::Full => (750_000, 10_000),
            };
            let tail_ns = 100_000.min(duration_ns / 3);
            let runs = [
                ("Fig 7(a) UR load 0.4", TrafficSpec::UniformRandom, 0.4),
                ("Fig 7(a) UR load 0.8", TrafficSpec::UniformRandom, 0.8),
                (
                    "Fig 7(b) ADV+1 load 0.2",
                    TrafficSpec::Adversarial { shift: 1 },
                    0.2,
                ),
                (
                    "Fig 7(b) ADV+4 load 0.2",
                    TrafficSpec::Adversarial { shift: 4 },
                    0.2,
                ),
                (
                    "Fig 7(b) ADV+1 load 0.4",
                    TrafficSpec::Adversarial { shift: 1 },
                    0.4,
                ),
                (
                    "Fig 7(b) ADV+4 load 0.4",
                    TrafficSpec::Adversarial { shift: 4 },
                    0.4,
                ),
            ]
            .into_iter()
            .map(|(title, traffic, load)| {
                (
                    title.to_string(),
                    ExperimentSpec {
                        name: format!("fig7/{}/{load}", traffic.label()),
                        topology: DragonflyConfig::paper_1056().into(),
                        routing: RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                        traffic,
                        workload: None,
                        load: Some(load),
                        schedule: None,
                        warmup_ns: duration_ns - tail_ns,
                        measure_ns: tail_ns,
                        tail_ns: 0,
                        seed: Some(args.seed),
                        series_bin_ns: Some(bin_ns),
                        engine: None,
                        faults: Vec::new(),
                        metrics: None,
                    },
                )
            })
            .collect();
            FigurePlan::Convergence {
                runs,
                curve: CurveKind::Latency,
            }
        }
        "fig8" => {
            // The paper switches the UR load at 1600 us (up) / 1280 us
            // (down) and the ADV+4 load at 3215 us / 2610 us into
            // multi-millisecond runs. Quick mode compresses the timeline
            // while keeping the step shape.
            let scale = match args.mode {
                RunMode::Quick => 1u64,
                RunMode::Full => 4,
            };
            let bin_ns = 20_000u64;
            let tail_ns = 100_000u64;
            let runs = [
                (
                    "Fig 8(a) UR 0.4 -> 0.8",
                    TrafficSpec::UniformRandom,
                    LoadSchedule::step(0.4, 0.8, 200_000 * scale),
                    400_000 * scale,
                ),
                (
                    "Fig 8(a) UR 0.8 -> 0.4",
                    TrafficSpec::UniformRandom,
                    LoadSchedule::step(0.8, 0.4, 200_000 * scale),
                    400_000 * scale,
                ),
                (
                    "Fig 8(b) ADV+4 0.2 -> 0.4",
                    TrafficSpec::Adversarial { shift: 4 },
                    LoadSchedule::step(0.2, 0.4, 300_000 * scale),
                    600_000 * scale,
                ),
                (
                    "Fig 8(b) ADV+4 0.4 -> 0.2",
                    TrafficSpec::Adversarial { shift: 4 },
                    LoadSchedule::step(0.4, 0.2, 300_000 * scale),
                    600_000 * scale,
                ),
            ]
            .into_iter()
            .map(|(title, traffic, schedule, duration_ns)| {
                (
                    title.to_string(),
                    ExperimentSpec {
                        name: format!("fig8/{}", traffic.label()),
                        topology: DragonflyConfig::paper_1056().into(),
                        routing: RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                        traffic,
                        workload: None,
                        load: None,
                        schedule: Some(schedule),
                        warmup_ns: duration_ns - tail_ns,
                        measure_ns: tail_ns,
                        tail_ns: 0,
                        seed: Some(args.seed),
                        series_bin_ns: Some(bin_ns),
                        engine: None,
                        faults: Vec::new(),
                        metrics: None,
                    },
                )
            })
            .collect();
            FigurePlan::Convergence {
                runs,
                curve: CurveKind::Throughput,
            }
        }
        "fig9" => {
            // The paper plots latency distributions at a fixed operating
            // point per pattern; UR / ADV+1 use the Figure 6 loads, the HPC
            // patterns a moderate load. The 2,550-node system is ~2.4x
            // larger, so quick mode trims the windows.
            let load_for = |spec: &TrafficSpec| match spec {
                TrafficSpec::UniformRandom => 0.8,
                TrafficSpec::Adversarial { .. } => 0.45,
                _ => 0.5,
            };
            let (warmup_ns, measure_ns) = match args.mode {
                RunMode::Quick => (60_000u64, 30_000u64),
                RunMode::Full => (args.warmup_ns(), args.measure_ns()),
            };
            let panels = TrafficSpec::paper_case_study()
                .into_iter()
                .map(|traffic| {
                    let load = load_for(&traffic);
                    let sweep = SweepSpec {
                        name: format!("fig9/{}", traffic.label()),
                        topology: DragonflyConfig::paper_2550().into(),
                        traffics: vec![traffic],
                        workload: None,
                        routings: RoutingSpec::paper_lineup_2550(),
                        loads: vec![load],
                        warmup_ns,
                        measure_ns,
                        seed: Some(args.seed),
                        seeds_per_point: None,
                        engine: None,
                        series_bin_ns: None,
                        faults: Vec::new(),
                        metrics: None,
                    };
                    (
                        format!("Figure 9 — {} @ load {load:.2}", traffic.label()),
                        sweep,
                    )
                })
                .collect();
            FigurePlan::Sweeps {
                panels,
                columns: ColumnSet::CaseStudy,
                saturation_summary: false,
            }
        }
        "maxq" => {
            let routings: Vec<RoutingSpec> = vec![
                RoutingSpec::QRouting { max_q: 0 },
                RoutingSpec::QRouting { max_q: 1 },
                RoutingSpec::QRouting { max_q: 2 },
                RoutingSpec::QRouting { max_q: 4 },
                RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            ];
            let panels = [
                (TrafficSpec::UniformRandom, 0.8),
                (TrafficSpec::Adversarial { shift: 1 }, 0.4),
                (TrafficSpec::Adversarial { shift: 4 }, 0.4),
            ]
            .into_iter()
            .map(|(traffic, load)| {
                let sweep = SweepSpec {
                    name: format!("maxq/{}", traffic.label()),
                    topology: DragonflyConfig::paper_1056().into(),
                    traffics: vec![traffic],
                    workload: None,
                    routings: routings.clone(),
                    loads: vec![load],
                    warmup_ns: args.warmup_ns(),
                    measure_ns: args.measure_ns(),
                    seed: Some(args.seed),
                    seeds_per_point: None,
                    engine: None,
                    series_bin_ns: None,
                    faults: Vec::new(),
                    metrics: None,
                };
                (format!("{} @ load {load:.2}", traffic.label()), sweep)
            })
            .collect();
            FigurePlan::Sweeps {
                panels,
                columns: ColumnSet::Ablation,
                saturation_summary: false,
            }
        }
        "jct" => {
            // Closed-loop: `loads` are message-count intensity multipliers
            // and `measure_ns` is the drain cap, not a window. Quick mode
            // uses the tiny systems; full mode the paper-scale Dragonfly
            // next to mid-size fat-tree and HyperX machines.
            use dragonfly_topology::{FatTreeConfig, HyperXConfig};
            let (dragonfly, fattree, hyperx, intensities, drain_cap_ns) = match args.mode {
                RunMode::Quick => (
                    DragonflyConfig::tiny(),
                    FatTreeConfig::tiny(),
                    HyperXConfig::tiny(),
                    vec![0.5, 1.0, 2.0],
                    10_000_000u64,
                ),
                RunMode::Full => (
                    DragonflyConfig::paper_1056(),
                    FatTreeConfig::small(),
                    HyperXConfig::small(),
                    vec![0.5, 1.0, 2.0, 4.0],
                    100_000_000,
                ),
            };
            let panels: [(String, dragonfly_topology::TopologySpec); 3] = [
                ("AllReduce JCT — Dragonfly".to_string(), dragonfly.into()),
                ("AllReduce JCT — fat-tree".to_string(), fattree.into()),
                ("AllReduce JCT — HyperX".to_string(), hyperx.into()),
            ];
            let panels = panels
                .into_iter()
                .map(|(title, topology)| {
                    let sweep = SweepSpec {
                        name: format!("jct/{}", topology.kind_name()),
                        topology,
                        traffics: vec![],
                        workload: Some(WorkloadSpec::AllReduce { messages: 2 }),
                        routings: RoutingSpec::paper_lineup(),
                        loads: intensities.clone(),
                        warmup_ns: 0,
                        measure_ns: drain_cap_ns,
                        seed: Some(args.seed),
                        seeds_per_point: None,
                        engine: None,
                        series_bin_ns: None,
                        faults: Vec::new(),
                        metrics: None,
                    };
                    (title, sweep)
                })
                .collect();
            FigurePlan::Sweeps {
                panels,
                columns: ColumnSet::CompletionTime,
                saturation_summary: false,
            }
        }
        "resilience" => {
            // Not a paper figure: kill a random fraction of the global
            // links 5 us into a closed-loop AllReduce and chart how the
            // six algorithms degrade and recover. `loads` stays a single
            // intensity; the fraction is the panel axis. Every point
            // records a time series so `recovery_time_us` is meaningful.
            use dragonfly_topology::{FatTreeConfig, HyperXConfig};
            let (dragonfly, fattree, hyperx, fractions, drain_cap_ns) = match args.mode {
                RunMode::Quick => (
                    DragonflyConfig::tiny(),
                    FatTreeConfig::tiny(),
                    HyperXConfig::tiny(),
                    vec![0.05, 0.15],
                    10_000_000u64,
                ),
                RunMode::Full => (
                    DragonflyConfig::paper_1056(),
                    FatTreeConfig::small(),
                    HyperXConfig::small(),
                    vec![0.02, 0.05, 0.10, 0.20],
                    100_000_000,
                ),
            };
            let systems: [(&str, dragonfly_topology::TopologySpec); 3] = [
                ("Dragonfly", dragonfly.into()),
                ("fat-tree", fattree.into()),
                ("HyperX", hyperx.into()),
            ];
            let mut panels = Vec::new();
            for (label, topology) in systems {
                for &fraction in &fractions {
                    let sweep = SweepSpec {
                        name: format!("resilience/{}/f{:.2}", topology.kind_name(), fraction),
                        topology,
                        traffics: vec![],
                        workload: Some(WorkloadSpec::AllReduce { messages: 2 }),
                        routings: RoutingSpec::paper_lineup(),
                        loads: vec![1.0],
                        warmup_ns: 0,
                        measure_ns: drain_cap_ns,
                        seed: Some(args.seed),
                        seeds_per_point: None,
                        engine: None,
                        series_bin_ns: Some(2_000),
                        faults: vec![FaultSpecEntry::random_global_down(5.0, fraction, args.seed)],
                        metrics: None,
                    };
                    panels.push((
                        format!(
                            "Resilience — {label}, {:.0}% global links down",
                            fraction * 100.0
                        ),
                        sweep,
                    ));
                }
            }
            FigurePlan::Sweeps {
                panels,
                columns: ColumnSet::Resilience,
                saturation_summary: false,
            }
        }
        "memory" => static_memory(),
        "scale" => {
            // The ROADMAP's 100x-scale check as a runnable figure: the
            // same system and knobs as the `bench` scale leg (see
            // `crate::smoke::scale_workload`), lifted into a SweepSpec so
            // the run shards/pipelines through the normal figure path. MIN
            // carries no Q-state and anchors the memory column; Q-adaptive
            // pays for exactly the table pages its traffic touched.
            let (load, measure_ns) = crate::smoke::scale_params(args.mode == RunMode::Quick);
            let loads = match args.mode {
                RunMode::Quick => vec![load],
                RunMode::Full => vec![0.05, load],
            };
            let sweep = SweepSpec {
                name: "scale/UR".to_string(),
                topology: crate::smoke::scale_system().into(),
                traffics: vec![TrafficSpec::UniformRandom],
                workload: None,
                routings: vec![
                    RoutingSpec::Minimal,
                    RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                ],
                loads,
                warmup_ns: 0,
                measure_ns,
                seed: Some(args.seed),
                seeds_per_point: None,
                engine: None,
                series_bin_ns: Some(500),
                faults: Vec::new(),
                metrics: Some(MetricsSpec {
                    mode: MetricsMode::Streaming,
                }),
            };
            FigurePlan::Sweeps {
                panels: vec![(
                    "110,976-node Dragonfly — streamed metrics, paged Q-tables".to_string(),
                    sweep,
                )],
                columns: ColumnSet::Scale,
                saturation_summary: false,
            }
        }
        _ => return None,
    };
    Some(plan)
}

fn static_table1() -> FigurePlan {
    let systems = paper_systems();
    let rows: Vec<Vec<String>> = [
        ("N (nodes)", systems.map(|(_, c)| c.nodes().to_string())),
        (
            "p (nodes per router)",
            systems.map(|(_, c)| c.p.to_string()),
        ),
        (
            "a (routers per group)",
            systems.map(|(_, c)| c.a.to_string()),
        ),
        (
            "h (global links per router)",
            systems.map(|(_, c)| c.h.to_string()),
        ),
        (
            "k = p+h+a-1 (ports per router)",
            systems.map(|(_, c)| c.radix().to_string()),
        ),
        (
            "g = a*h+1 (groups)",
            systems.map(|(_, c)| c.groups().to_string()),
        ),
        (
            "m = g*a (routers)",
            systems.map(|(_, c)| c.routers().to_string()),
        ),
        (
            "balanced (a = 2p = 2h)",
            systems.map(|(_, c)| c.is_balanced().to_string()),
        ),
        (
            "global links (total)",
            systems.map(|(_, c)| c.global_links().to_string()),
        ),
        (
            "local links (total)",
            systems.map(|(_, c)| c.local_links().to_string()),
        ),
    ]
    .into_iter()
    .map(|(name, vals)| {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        row
    })
    .collect();
    let headers = ["parameter", systems[0].0, systems[1].0];
    FigurePlan::Static {
        text: markdown_table(&headers, &rows),
        csv: rows_to_csv(&headers, &rows),
    }
}

fn static_memory() -> FigurePlan {
    let mut rows = Vec::new();
    for (name, cfg) in paper_systems() {
        let original = QTable::new(cfg.routers(), cfg.fabric_ports(), 0.0);
        let two_level = TwoLevelQTable::new(cfg.groups(), cfg.p, cfg.fabric_ports(), 0.0);
        rows.push(vec![
            name.to_string(),
            format!("{} x {}", original.rows(), original.columns()),
            format!("{}", original.memory_bytes()),
            format!("{} x {}", two_level.rows(), two_level.columns()),
            format!("{}", two_level.memory_bytes()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - two_level.memory_bytes() as f64 / original.memory_bytes() as f64)
            ),
        ]);
    }
    let headers = [
        "system",
        "Q-routing table (rows x cols)",
        "bytes",
        "two-level table (rows x cols)",
        "bytes",
        "savings",
    ];
    FigurePlan::Static {
        text: markdown_table(&headers, &rows),
        csv: rows_to_csv(&headers, &rows),
    }
}

fn rows_to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |cell: &str| {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = headers
        .iter()
        .map(|h| escape(h))
        .collect::<Vec<_>>()
        .join(",");
    for row in rows {
        out.push('\n');
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
    }
    out
}

/// The structured outcome of running a [`FigurePlan`].
pub enum FigureResult {
    /// Per-panel sweep results.
    Sweeps(Vec<(String, SweepResult)>),
    /// Per-panel convergence results.
    Convergence(Vec<(String, ConvergenceResult)>),
    /// A static table.
    Static {
        /// Rendered table.
        text: String,
        /// CSV rendering.
        csv: String,
    },
}

impl FigureResult {
    /// All results as CSV (panels separated by `# panel:` comment lines
    /// for sweeps; convergence curves as `panel,time_us,...` rows).
    pub fn to_csv(&self) -> String {
        match self {
            FigureResult::Sweeps(panels) => {
                let mut out = String::new();
                for (title, result) in panels {
                    out.push_str(&format!("# panel: {title}\n"));
                    out.push_str(&result.to_csv());
                    out.push('\n');
                }
                out
            }
            FigureResult::Convergence(panels) => {
                let mut out = String::from("panel,time_us,mean_latency_us,throughput\n");
                for (title, result) in panels {
                    let latency = result.latency_curve();
                    let throughput = result.throughput_curve();
                    for ((t, lat), (_, tput)) in latency.iter().zip(throughput.iter()) {
                        out.push_str(&format!("{title},{t:.1},{lat:.4},{tput:.4}\n"));
                    }
                }
                out
            }
            FigureResult::Static { csv, .. } => csv.clone(),
        }
    }

    /// All results as pretty JSON, keyed by panel title.
    pub fn to_json(&self) -> String {
        let value = match self {
            FigureResult::Sweeps(panels) => Value::Map(
                panels
                    .iter()
                    .map(|(title, result)| (title.clone(), result.to_value()))
                    .collect(),
            ),
            FigureResult::Convergence(panels) => Value::Map(
                panels
                    .iter()
                    .map(|(title, result)| (title.clone(), result.to_value()))
                    .collect(),
            ),
            FigureResult::Static { text, .. } => {
                Value::Map(vec![("table".to_string(), Value::Str(text.clone()))])
            }
        };
        serde_json::to_string_pretty(&value).expect("serialisation is infallible")
    }
}

/// The result cache selected by `args` (`--cache-dir` without
/// `--no-cache`), or `None`.
fn cache_from_args(args: &BenchArgs) -> Result<Option<ResultCache>, String> {
    match (&args.cache_dir, args.no_cache) {
        (Some(dir), false) => ResultCache::new(dir).map(Some),
        _ => Ok(None),
    }
}

/// Execute a plan, streaming human-readable progress and tables to stdout
/// (exactly what the legacy binaries printed), and return the structured
/// results for CSV/JSON export.
pub fn run_plan(plan: FigurePlan, args: &BenchArgs) -> FigureResult {
    let cache = cache_from_args(args).unwrap_or_else(|e| {
        eprintln!("warning: {e}; running without a cache");
        None
    });
    match plan {
        FigurePlan::Sweeps {
            panels,
            columns,
            saturation_summary,
        } => {
            let mut results = Vec::new();
            for (title, mut sweep) in panels {
                // Multi-core hosts shard (and pipeline, the engine
                // default) the paper runs out of the box; identical
                // results, so cached points stay valid.
                apply_engine_overrides(&mut sweep.engine, args.effective_shards(), args.pipeline);
                println!("\n{title} ({} simulations)...", sweep.len());
                let (result, hits) = run_sweep_cached(&sweep, args.threads, cache.as_ref());
                if hits > 0 {
                    println!("(served {hits}/{} points from the cache)", sweep.len());
                }
                print_sweep_table(&result, columns);
                if saturation_summary {
                    print_saturation_summary(&sweep, &result);
                }
                results.push((title, result));
            }
            FigureResult::Sweeps(results)
        }
        FigurePlan::Convergence { runs, curve } => {
            let mut results = Vec::new();
            for (title, mut spec) in runs {
                apply_engine_overrides(&mut spec.engine, args.effective_shards(), args.pipeline);
                println!("\n{title} (simulating {} us)...", spec.total_ns() / 1_000);
                let (result, hit) = run_convergence_cached(&spec, cache.as_ref());
                if hit {
                    println!("(served from the cache)");
                }
                print_convergence_panel(&result, curve);
                results.push((title, result));
            }
            FigureResult::Convergence(results)
        }
        FigurePlan::Static { text, csv } => {
            println!("{text}");
            FigureResult::Static { text, csv }
        }
    }
}

fn print_sweep_table(result: &SweepResult, columns: ColumnSet) {
    let (headers, rows): (Vec<&str>, Vec<Vec<String>>) = match columns {
        ColumnSet::LoadSweep => (
            vec![
                "routing",
                "offered load",
                "throughput",
                "mean latency (us)",
                "p99 latency (us)",
                "mean hops",
            ],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.2}", r.offered_load),
                        format!("{:.3}", r.throughput),
                        format!("{:.2}", r.mean_latency_us),
                        format!("{:.2}", r.p99_latency_us),
                        format!("{:.2}", r.mean_hops),
                    ]
                })
                .collect(),
        ),
        ColumnSet::Distribution => (
            vec![
                "routing",
                "Q1 (us)",
                "median (us)",
                "Q3 (us)",
                "mean (us)",
                "p95 (us)",
                "p99 (us)",
                "< 2 us",
            ],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.2}", r.q1_latency_us),
                        format!("{:.2}", r.median_latency_us),
                        format!("{:.2}", r.q3_latency_us),
                        format!("{:.2}", r.mean_latency_us),
                        format!("{:.2}", r.p95_latency_us),
                        format!("{:.2}", r.p99_latency_us),
                        format!("{:.1}%", 100.0 * r.fraction_below_2us),
                    ]
                })
                .collect(),
        ),
        ColumnSet::CaseStudy => (
            vec![
                "routing",
                "mean (us)",
                "median (us)",
                "p95 (us)",
                "p99 (us)",
                "throughput",
                "hops",
            ],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.2}", r.mean_latency_us),
                        format!("{:.2}", r.median_latency_us),
                        format!("{:.2}", r.p95_latency_us),
                        format!("{:.2}", r.p99_latency_us),
                        format!("{:.3}", r.throughput),
                        format!("{:.2}", r.mean_hops),
                    ]
                })
                .collect(),
        ),
        ColumnSet::Ablation => (
            vec!["routing", "throughput", "mean latency (us)", "mean hops"],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.3}", r.throughput),
                        format!("{:.2}", r.mean_latency_us),
                        format!("{:.2}", r.mean_hops),
                    ]
                })
                .collect(),
        ),
        ColumnSet::CompletionTime => (
            vec![
                "routing",
                "intensity",
                "JCT (us)",
                "skew (us)",
                "barrier wait (us)",
                "ranks",
            ],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.2}", r.offered_load),
                        format!("{:.3}", r.job_completion_us),
                        format!("{:.3}", r.collective_skew_us),
                        format!("{:.3}", r.barrier_wait_us),
                        format!("{}", r.ranks_finished),
                    ]
                })
                .collect(),
        ),
        ColumnSet::Resilience => (
            vec![
                "routing",
                "JCT (us)",
                "dropped",
                "retransmits",
                "unreachable pairs",
                "recovery (us)",
            ],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.3}", r.job_completion_us),
                        format!("{}", r.dropped_packets),
                        format!("{}", r.retransmits),
                        format!("{}", r.unreachable_pairs),
                        format!("{:.1}", r.recovery_time_us),
                    ]
                })
                .collect(),
        ),
        ColumnSet::Scale => (
            vec![
                "routing",
                "offered load",
                "throughput",
                "mean (us)",
                "p99 (us)",
                "delivered",
                "memory (MiB)",
            ],
            result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        format!("{:.2}", r.offered_load),
                        format!("{:.3}", r.throughput),
                        format!("{:.2}", r.mean_latency_us),
                        format!("{:.2}", r.p99_latency_us),
                        format!("{}", r.packets_delivered),
                        format!("{:.0}", r.memory_bytes as f64 / (1024.0 * 1024.0)),
                    ]
                })
                .collect(),
        ),
    };
    println!("{}", markdown_table(&headers, &rows));
}

fn print_saturation_summary(sweep: &SweepSpec, result: &SweepResult) {
    let mut summary = Vec::new();
    for spec in sweep.effective_routings() {
        let label = spec.label();
        summary.push(vec![
            label.clone(),
            format!("{:.3}", result.saturation_throughput(&label)),
        ]);
    }
    let traffic_labels: Vec<String> = sweep
        .effective_traffics()
        .iter()
        .map(TrafficSpec::label)
        .collect();
    println!("\nSaturation throughput ({}):", traffic_labels.join(", "));
    println!(
        "{}",
        markdown_table(&["routing", "max throughput"], &summary)
    );
}

fn print_convergence_panel(result: &ConvergenceResult, curve: CurveKind) {
    match curve {
        CurveKind::Latency => {
            // Print at a 30 us granularity to keep the table readable (the
            // full series is available programmatically / via CSV).
            let rows: Vec<Vec<String>> = result
                .latency_curve()
                .iter()
                .step_by(3)
                .map(|(t, lat)| vec![format!("{t:.0}"), format!("{lat:.2}")])
                .collect();
            println!(
                "{}",
                markdown_table(&["time (us)", "mean latency (us)"], &rows)
            );
            match result.convergence_us {
                Some(t) => println!("converged after ~{t:.0} us (paper: within 500 us)"),
                None => println!("not yet settled within the simulated window"),
            }
            println!("converged-window summary: {}", result.report.summary());
        }
        CurveKind::Throughput => {
            let rows: Vec<Vec<String>> = result
                .throughput_curve()
                .iter()
                .step_by(2)
                .map(|(t, tp)| vec![format!("{t:.0}"), format!("{tp:.3}")])
                .collect();
            println!(
                "{}",
                markdown_table(&["time (us)", "system throughput"], &rows)
            );
            println!("final-window summary: {}", result.report.summary());
        }
    }
}

/// Run one figure end to end — banner, panels, paper notes — and return
/// its structured results. This is the whole implementation of the
/// `fig5`/`fig6`/... binaries and of `qadaptive-cli figure`.
pub fn run_figure(id: &str, args: &BenchArgs) -> Result<FigureResult, String> {
    let figure = figure(id).ok_or_else(|| {
        format!(
            "unknown figure `{id}` (known: {})",
            catalog()
                .iter()
                .map(|f| f.id)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let plan = paper_specs(figure.id, args).expect("catalog and registry agree");
    println!("{}", args.banner(figure.title));
    let result = run_plan(plan, args);
    if !figure.notes.is_empty() {
        println!("\n{}", figure.notes);
    }
    Ok(result)
}

/// `fn main` body shared by the figure binaries: parse standard arguments
/// from the environment and run the figure.
pub fn main_for(id: &str) {
    let args = BenchArgs::from_env();
    if let Err(message) = run_figure(id, &args) {
        eprintln!("{message}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_args() -> BenchArgs {
        BenchArgs::from_slice(&["prog".to_string(), "--quick".to_string()])
    }

    #[test]
    fn every_catalog_entry_has_a_plan() {
        for figure in catalog() {
            assert!(
                paper_specs(figure.id, &quick_args()).is_some(),
                "no plan for {}",
                figure.id
            );
        }
    }

    #[test]
    fn ids_resolve_in_all_spellings() {
        for (alias, id) in [
            ("5", "fig5"),
            ("fig9", "fig9"),
            ("table1", "table1"),
            ("table_memory", "memory"),
            ("ablation_maxq", "maxq"),
            ("MAXQ", "maxq"),
        ] {
            assert_eq!(canonical_id(alias), Some(id));
        }
        assert_eq!(canonical_id("fig12"), None);
    }

    #[test]
    fn fig5_quick_matches_the_legacy_definition() {
        // The exact grids the pre-registry fig5 binary hand-assembled.
        let args = quick_args();
        let plan = paper_specs("fig5", &args).unwrap();
        match plan {
            FigurePlan::Sweeps {
                panels,
                columns,
                saturation_summary,
            } => {
                assert_eq!(columns, ColumnSet::LoadSweep);
                assert!(saturation_summary);
                assert_eq!(panels.len(), 3);
                let (_, ur) = &panels[0];
                assert_eq!(ur.topology, DragonflyConfig::paper_1056().into());
                assert_eq!(ur.effective_routings(), RoutingSpec::paper_lineup());
                assert_eq!(ur.loads, args.ur_loads());
                assert_eq!(ur.warmup_ns, args.warmup_ns());
                assert_eq!(ur.measure_ns, args.measure_ns());
                assert_eq!(ur.seed, Some(args.seed));
                let (_, adv4) = &panels[2];
                assert_eq!(adv4.traffics, vec![TrafficSpec::Adversarial { shift: 4 }]);
                assert_eq!(adv4.loads, args.adv_loads());
            }
            _ => panic!("fig5 must be a sweep plan"),
        }
    }

    #[test]
    fn fig5_registry_panels_equal_the_legacy_load_sweeps() {
        // Before the registry existed, the fig5 binary hand-assembled one
        // `LoadSweep` per traffic pattern. Rebuilding those sweeps and
        // lifting them into `SweepSpec` must give exactly the registry's
        // panels (modulo the display name) — and
        // `sweep_spec_reproduces_load_sweep_exactly` in dragonfly-sim
        // proves equal definitions produce identical `SweepResult`s, so
        // together these pin `figure 5 --quick` to the legacy output.
        let args = quick_args();
        let legacy_patterns = [
            (TrafficSpec::UniformRandom, args.ur_loads()),
            (TrafficSpec::Adversarial { shift: 1 }, args.adv_loads()),
            (TrafficSpec::Adversarial { shift: 4 }, args.adv_loads()),
        ];
        let FigurePlan::Sweeps { panels, .. } = paper_specs("fig5", &args).unwrap() else {
            panic!("fig5 must be a sweep plan");
        };
        assert_eq!(panels.len(), legacy_patterns.len());
        for ((_, registry_panel), (traffic, loads)) in panels.iter().zip(legacy_patterns) {
            let legacy = dragonfly_sim::sweep::LoadSweep {
                topology: DragonflyConfig::paper_1056(),
                traffic,
                routings: RoutingSpec::paper_lineup(),
                loads,
                warmup_ns: args.warmup_ns(),
                measure_ns: args.measure_ns(),
                seed: args.seed,
            };
            let mut lifted = SweepSpec::from(legacy);
            lifted.name = registry_panel.name.clone();
            assert_eq!(&lifted, registry_panel);
        }
    }

    #[test]
    fn fig7_runs_are_series_enabled_experiment_specs() {
        match paper_specs("fig7", &quick_args()).unwrap() {
            FigurePlan::Convergence { runs, curve } => {
                assert_eq!(curve, CurveKind::Latency);
                assert_eq!(runs.len(), 6);
                for (_, spec) in &runs {
                    assert!(spec.series_bin_ns.is_some());
                    assert!(spec.validate().is_ok());
                    assert_eq!(spec.total_ns(), 300_000);
                }
            }
            _ => panic!("fig7 must be a convergence plan"),
        }
    }

    #[test]
    fn static_tables_render_and_export() {
        for id in ["table1", "memory"] {
            match paper_specs(id, &quick_args()).unwrap() {
                FigurePlan::Static { text, csv } => {
                    assert!(text.contains('|'));
                    assert!(csv.lines().count() >= 3);
                }
                _ => panic!("{id} must be static"),
            }
        }
    }

    #[test]
    fn jct_panels_are_closed_loop_on_all_three_topologies() {
        let FigurePlan::Sweeps {
            panels,
            columns,
            saturation_summary,
        } = paper_specs("jct", &quick_args()).unwrap()
        else {
            panic!("jct must be a sweep plan");
        };
        assert_eq!(columns, ColumnSet::CompletionTime);
        assert!(!saturation_summary);
        let kinds: Vec<&str> = panels.iter().map(|(_, s)| s.topology.kind_name()).collect();
        assert_eq!(kinds, vec!["dragonfly", "fattree", "hyperx"]);
        for (title, sweep) in &panels {
            assert!(
                matches!(sweep.workload, Some(WorkloadSpec::AllReduce { .. })),
                "{title} must run a closed-loop AllReduce"
            );
            assert!(sweep.traffics.is_empty(), "{title} must not inject traffic");
            assert_eq!(sweep.routings, RoutingSpec::paper_lineup());
            assert!(
                sweep.loads.iter().any(|&l| l > 1.0),
                "intensities may exceed 1.0 (they are not offered loads)"
            );
            assert!(sweep.validate().is_ok(), "invalid panel {title}");
        }
    }

    #[test]
    fn resilience_panels_fault_all_three_topologies() {
        let FigurePlan::Sweeps {
            panels,
            columns,
            saturation_summary,
        } = paper_specs("resilience", &quick_args()).unwrap()
        else {
            panic!("resilience must be a sweep plan");
        };
        assert_eq!(columns, ColumnSet::Resilience);
        assert!(!saturation_summary);
        // topologies × fractions panels, each with a seeded random
        // global-link kill, a closed-loop workload and a time series (so
        // `recovery_time_us` is computable).
        let kinds: std::collections::BTreeSet<&str> =
            panels.iter().map(|(_, s)| s.topology.kind_name()).collect();
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            vec!["dragonfly", "fattree", "hyperx"]
        );
        for (title, sweep) in &panels {
            assert_eq!(sweep.faults.len(), 1, "{title}");
            assert!(sweep.faults[0].fraction.is_some(), "{title}");
            assert!(sweep.workload.is_some(), "{title}");
            assert!(sweep.series_bin_ns.is_some(), "{title}");
            assert!(sweep.validate().is_ok(), "invalid panel {title}");
            assert!(sweep
                .points()
                .iter()
                .all(|p| p.faults == sweep.faults && p.series_bin_ns == sweep.series_bin_ns));
        }
        assert_eq!(canonical_id("faults"), Some("resilience"));
    }

    #[test]
    fn scale_panel_is_the_bounded_memory_configuration() {
        // The figure must match the `bench` scale leg: 100k+ nodes,
        // streaming metrics, a window short enough to terminate, and a
        // MIN memory floor next to the Q-adaptive paged tables.
        use dragonfly_sim::spec::MetricsMode;
        let FigurePlan::Sweeps {
            panels, columns, ..
        } = paper_specs("scale", &quick_args()).unwrap()
        else {
            panic!("scale must be a sweep plan");
        };
        assert_eq!(columns, ColumnSet::Scale);
        assert_eq!(panels.len(), 1);
        let (_, sweep) = &panels[0];
        assert!(sweep.topology.num_nodes() > 100_000);
        assert_eq!(
            sweep.metrics.as_ref().map(|m| m.mode),
            Some(MetricsMode::Streaming),
            "the scale figure must stream its statistics"
        );
        assert!(sweep.series_bin_ns.is_some(), "per-window streamed metrics");
        assert_eq!(sweep.routings[0], RoutingSpec::Minimal);
        assert!(matches!(sweep.routings[1], RoutingSpec::QAdaptive(_)));
        assert!(sweep.validate().is_ok());
        assert_eq!(canonical_id("bounded_memory"), Some("scale"));
    }

    #[test]
    fn every_sweep_panel_validates() {
        for figure in catalog() {
            if let Some(FigurePlan::Sweeps { panels, .. }) = paper_specs(figure.id, &quick_args()) {
                for (title, sweep) in panels {
                    assert!(sweep.validate().is_ok(), "invalid panel {title}");
                    assert!(!sweep.is_empty(), "empty panel {title}");
                }
            }
        }
    }
}
