//! Shared command-line handling and table formatting for the figure
//! binaries.

use dragonfly_engine::config::ShardKind;
use dragonfly_engine::time::SimTime;

/// How much simulated time to spend per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Reduced windows / fewer points; finishes in minutes on a laptop.
    Quick,
    /// Paper-scale measurement windows (the paper averages over 100 µs
    /// after stabilisation).
    Full,
}

/// Parsed command-line arguments shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Quick or full windows.
    pub mode: RunMode,
    /// Worker threads for parallel sweeps (0 = all CPUs). When runs are
    /// sharded this budget is divided between sweep workers and per-run
    /// shards.
    pub threads: usize,
    /// Base seed.
    pub seed: u64,
    /// Conservative-parallel shard override applied to every simulation
    /// of the figure (`None` = the multi-core default, see
    /// [`BenchArgs::effective_shards`]).
    pub shards: Option<ShardKind>,
    /// Overlapped-window pipelining override (`None` = the engine default,
    /// which is on; `--no-pipeline` forces the lockstep barrier mode).
    /// Results are bit-for-bit identical either way.
    pub pipeline: Option<bool>,
    /// Serve unchanged simulation points from this result-cache directory
    /// (see `dragonfly_bench::cache`).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Bypass the cache even when `cache_dir` is set.
    pub no_cache: bool,
}

impl BenchArgs {
    /// Parse from `std::env::args`; unknown flags are ignored so the
    /// binaries stay forgiving.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_slice(&args)
    }

    /// Parse from an explicit argument list (testable).
    pub fn from_slice(args: &[String]) -> Self {
        let mut mode = RunMode::Quick;
        let mut threads = 0usize;
        let mut seed = 1u64;
        let mut shards = None;
        let mut pipeline = None;
        let mut cache_dir = None;
        let mut no_cache = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => mode = RunMode::Full,
                "--quick" => mode = RunMode::Quick,
                "--pipeline" => pipeline = Some(true),
                "--no-pipeline" => pipeline = Some(false),
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        threads = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        seed = v;
                        i += 1;
                    }
                }
                "--shards" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| parse_shards(s).ok()) {
                        shards = Some(v);
                        i += 1;
                    }
                }
                "--cache-dir" => {
                    if let Some(v) = args.get(i + 1) {
                        cache_dir = Some(std::path::PathBuf::from(v));
                        i += 1;
                    }
                }
                "--no-cache" => no_cache = true,
                _ => {}
            }
            i += 1;
        }
        Self {
            mode,
            threads,
            seed,
            shards,
            pipeline,
            cache_dir,
            no_cache,
        }
    }

    /// The shard override figure runs actually apply: an explicit
    /// `--shards` wins; otherwise multi-core hosts default to `Auto` so
    /// the big 1,056/2,550-node paper runs shard (and, with the engine
    /// default, pipeline) out of the box. Single-core hosts keep the
    /// sequential engine. Results are identical either way — the cache
    /// key strips the shard/pipeline fields for exactly that reason.
    pub fn effective_shards(&self) -> Option<ShardKind> {
        self.shards.or_else(|| {
            let cpus = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cpus > 1).then_some(ShardKind::Auto)
        })
    }

    /// Warmup time per simulation point. Q-adaptive needs a learning period
    /// before the measurement window (the paper observes convergence within
    /// 200–500 µs), so even quick mode warms up for 120 µs.
    pub fn warmup_ns(&self) -> SimTime {
        match self.mode {
            RunMode::Quick => 120_000,
            RunMode::Full => 300_000,
        }
    }

    /// Measurement window per simulation point.
    pub fn measure_ns(&self) -> SimTime {
        match self.mode {
            RunMode::Quick => 40_000,
            RunMode::Full => 100_000,
        }
    }

    /// Offered-load grid for uniform-random sweeps (Figure 5 top row).
    pub fn ur_loads(&self) -> Vec<f64> {
        match self.mode {
            RunMode::Quick => vec![0.2, 0.4, 0.6, 0.8, 0.95],
            RunMode::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0],
        }
    }

    /// Offered-load grid for adversarial sweeps (Figure 5 rows 2–3).
    pub fn adv_loads(&self) -> Vec<f64> {
        match self.mode {
            RunMode::Quick => vec![0.1, 0.2, 0.3, 0.4, 0.5],
            RunMode::Full => vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5],
        }
    }

    /// A one-line banner describing the run.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "== {} | mode={:?} warmup={} µs measure={} µs threads={} seed={} ==",
            what,
            self.mode,
            self.warmup_ns() / 1_000,
            self.measure_ns() / 1_000,
            if self.threads == 0 {
                "auto".to_string()
            } else {
                self.threads.to_string()
            },
            self.seed
        )
    }
}

/// Apply `--shards` and `--pipeline`/`--no-pipeline` overrides to a
/// spec's optional engine config. An untouched spec stays `None` (no
/// override materialised) so scenario files keep full control when no
/// flag was given.
pub fn apply_engine_overrides(
    engine: &mut Option<dragonfly_engine::EngineConfig>,
    shards: Option<ShardKind>,
    pipeline: Option<bool>,
) {
    if let Some(kind) = shards {
        engine.get_or_insert_with(Default::default).shards = kind;
    }
    if let Some(pipeline) = pipeline {
        engine.get_or_insert_with(Default::default).pipeline = pipeline;
    }
}

/// Parse a `--shards` value: `single`, `auto`, or a shard count.
pub fn parse_shards(value: &str) -> Result<ShardKind, String> {
    match value.to_ascii_lowercase().as_str() {
        "single" | "1" => Ok(ShardKind::Single),
        "auto" => Ok(ShardKind::Auto),
        n => n
            .parse::<usize>()
            .map(ShardKind::Fixed)
            .map_err(|_| format!("--shards takes `auto`, `single` or a count (got `{value}`)")),
    }
}

/// Render a markdown-style table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(4)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let mut out = fmt_row(&header_cells);
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep));
    for row in rows {
        out.push('\n');
        out.push_str(&fmt_row(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn default_args_are_quick_mode() {
        let a = BenchArgs::from_slice(&s(&["prog"]));
        assert_eq!(a.mode, RunMode::Quick);
        assert_eq!(a.threads, 0);
        assert_eq!(a.seed, 1);
        assert!(a.warmup_ns() < 300_000);
    }

    #[test]
    fn full_mode_and_options_parse() {
        let a = BenchArgs::from_slice(&s(&["prog", "--full", "--threads", "8", "--seed", "9"]));
        assert_eq!(a.mode, RunMode::Full);
        assert_eq!(a.threads, 8);
        assert_eq!(a.seed, 9);
        assert_eq!(a.measure_ns(), 100_000);
        assert!(a.ur_loads().len() > a.adv_loads().len());
        assert!(a.banner("fig5").contains("fig5"));
        assert_eq!(a.shards, None);
        assert_eq!(a.pipeline, None, "engine default unless a flag is given");
        assert_eq!(a.cache_dir, None);
        assert!(!a.no_cache);
    }

    #[test]
    fn shard_and_cache_flags_parse() {
        let a = BenchArgs::from_slice(&s(&[
            "prog",
            "--shards",
            "4",
            "--no-pipeline",
            "--cache-dir",
            "/tmp/qcache",
            "--no-cache",
        ]));
        assert_eq!(a.shards, Some(ShardKind::Fixed(4)));
        assert_eq!(a.pipeline, Some(false));
        assert_eq!(
            a.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/qcache"))
        );
        assert!(a.no_cache);
        assert_eq!(
            BenchArgs::from_slice(&s(&["prog", "--pipeline"])).pipeline,
            Some(true)
        );
        assert_eq!(parse_shards("auto"), Ok(ShardKind::Auto));
        assert_eq!(parse_shards("single"), Ok(ShardKind::Single));
        assert_eq!(parse_shards("6"), Ok(ShardKind::Fixed(6)));
        assert!(parse_shards("lots").is_err());
    }

    #[test]
    fn effective_shards_defaults_to_auto_on_multi_core_hosts() {
        let explicit = BenchArgs::from_slice(&s(&["prog", "--shards", "2"]));
        assert_eq!(
            explicit.effective_shards(),
            Some(ShardKind::Fixed(2)),
            "an explicit --shards always wins"
        );
        let defaulted = BenchArgs::from_slice(&s(&["prog"]));
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cpus > 1 {
            assert_eq!(defaulted.effective_shards(), Some(ShardKind::Auto));
        } else {
            assert_eq!(defaulted.effective_shards(), None);
        }
    }

    #[test]
    fn engine_overrides_compose_and_leave_untouched_specs_alone() {
        let mut engine = None;
        apply_engine_overrides(&mut engine, None, None);
        assert_eq!(engine, None, "no flags → no override materialised");
        apply_engine_overrides(&mut engine, None, Some(false));
        let cfg = engine.unwrap();
        assert!(!cfg.pipeline);
        assert_eq!(cfg.shards, ShardKind::Single);
        let mut engine = Some(cfg);
        apply_engine_overrides(&mut engine, Some(ShardKind::Auto), None);
        let cfg = engine.unwrap();
        assert_eq!(cfg.shards, ShardKind::Auto);
        assert!(!cfg.pipeline, "earlier --no-pipeline survives --shards");
    }

    #[test]
    fn load_grids_are_sorted_and_in_range() {
        for args in [
            BenchArgs::from_slice(&s(&["p"])),
            BenchArgs::from_slice(&s(&["p", "--full"])),
        ] {
            for grid in [args.ur_loads(), args.adv_loads()] {
                assert!(grid.windows(2).all(|w| w[0] < w[1]));
                assert!(grid.iter().all(|l| *l > 0.0 && *l <= 1.0));
            }
            assert!(args.adv_loads().iter().all(|l| *l <= 0.5));
        }
    }

    #[test]
    fn markdown_table_aligns_columns() {
        let t = markdown_table(&["a", "metric"], &[s(&["x", "1.0"]), s(&["longer", "2.5"])]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        assert_eq!(lines[0].len(), lines[3].len());
    }
}
