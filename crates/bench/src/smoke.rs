//! The fixed engine-throughput smoke benchmark behind `qadaptive-cli
//! bench` and the CI perf-regression gate.
//!
//! One canonical workload — uniform-random traffic at 30 % load on the
//! paper's 1,056-node system under minimal routing (the cheapest agent, so
//! the engine itself dominates) — is run once per scheduler
//! implementation, once on the sharded engine in the lockstep *barrier*
//! mode, and once with the overlapped-window *pipeline* on (the
//! pipelined-vs-barrier leg). A separate **closed-loop** leg runs a
//! recursive-doubling AllReduce task program on the same system to drain
//! and records its events/sec plus the simulated job-completion time, and
//! a **faulted** leg re-runs the open-loop workload under UGAL-G with 5 %
//! of the global links killed mid-window (the liveness checks and
//! dead-port fallbacks on the hot path have a measurable cost worth
//! tracking). A **scale** leg runs uniform-random traffic on a
//! 110,976-node Dragonfly (p=16, a=24, h=12) under Q-adaptive with the
//! streaming metrics sketches and the lazily paged two-level Q-tables —
//! the bounded-memory representations — and records the end-of-run
//! `memory_bytes` rollup (Q-tables + packet arena + metric accumulators)
//! next to its throughput, so the 100x-scale memory claim has a number CI
//! can pin. The result records simulated events per wall-clock second
//! for each leg, and is written to `BENCH_PR8.json` at the repository
//! root so later PRs have a perf trajectory to compare against
//! (`BENCH_PR2.json` through `BENCH_PR7.json` are the previous baselines,
//! still readable thanks to defaulted fields). `host_cpus` is recorded
//! because wall-clock legs are only comparable between identical hosts —
//! see [`check_against_baseline`].

use dragonfly_engine::config::{EngineConfig, SchedulerKind, ShardKind};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_sim::fault::FaultSpecEntry;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use dragonfly_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Throughput measurement of one scheduler on the smoke workload.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SchedulerBench {
    /// Simulated events processed per wall-clock second (best of the
    /// measured iterations).
    pub events_per_sec: f64,
    /// Wall-clock seconds of the fastest iteration.
    pub wall_s: f64,
    /// Simulated events processed by one run of the workload.
    pub events: u64,
}

/// Size and save/load timing of one scale-leg checkpoint in both on-disk
/// encodings (the `qadaptive-checkpoint-v4` binary codec vs v3 JSON),
/// measured through the real file path (`RunCheckpoint::save_format` /
/// `RunCheckpoint::load`) on the 110k-node snapshot.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SnapshotBench {
    /// Bytes of the JSON (v3) file.
    pub json_bytes: u64,
    /// Bytes of the binary (v4) file.
    pub binary_bytes: u64,
    /// `json_bytes / binary_bytes` — how much smaller binary is.
    pub size_ratio: f64,
    /// Wall-clock seconds to save the JSON file.
    pub json_save_s: f64,
    /// Wall-clock seconds to save the binary file.
    pub binary_save_s: f64,
    /// Wall-clock seconds to load (read + parse) the JSON file.
    pub json_load_s: f64,
    /// Wall-clock seconds to load (read + parse) the binary file.
    pub binary_load_s: f64,
    /// `json_save_s / binary_save_s`.
    pub save_speedup: f64,
    /// `json_load_s / binary_load_s`.
    pub load_speedup: f64,
}

/// The full smoke-benchmark record (the `BENCH_PR2.json` schema).
///
/// The top-level `events_per_sec` / `wall_s` / `events` fields describe the
/// shipping (calendar) scheduler; `binary_heap` keeps the A/B comparison
/// point and `speedup` their ratio.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SmokeBench {
    /// Workload identifier.
    pub workload: String,
    /// The topology every leg ran on (the labelled `TopologySpec`; empty
    /// in pre-topology-abstraction baselines).
    #[serde(default)]
    pub topology: String,
    /// Number of compute nodes in the topology.
    pub nodes: usize,
    /// Measurement window in simulated ns.
    pub measure_ns: u64,
    /// Events processed by the calendar-scheduler run.
    pub events: u64,
    /// Calendar-scheduler events per wall-clock second.
    pub events_per_sec: f64,
    /// Calendar-scheduler wall-clock seconds.
    pub wall_s: f64,
    /// Detailed calendar-scheduler measurement.
    pub calendar: SchedulerBench,
    /// Detailed binary-heap measurement (the pre-calendar baseline).
    pub binary_heap: SchedulerBench,
    /// `calendar.events_per_sec / binary_heap.events_per_sec`.
    pub speedup: f64,
    /// Sharded-engine measurement in the lockstep **barrier** mode
    /// (calendar scheduler, `shards` shards, `pipeline = false`).
    #[serde(default)]
    pub sharded: SchedulerBench,
    /// Shard count of the sharded legs (0 in pre-shard baselines).
    #[serde(default)]
    pub shards: usize,
    /// `sharded.events_per_sec / calendar.events_per_sec` — the
    /// machine-relative intra-simulation parallel speedup. Only meaningful
    /// when the recording host had at least `shards` CPUs (see
    /// `host_cpus`); on a smaller host the lockstep windows serialise and
    /// the ratio records the sharding overhead instead.
    #[serde(default)]
    pub shard_speedup: f64,
    /// Sharded-engine measurement with the overlapped-window **pipeline**
    /// on (`shards` shards, `pipeline = true`) — same event stream as
    /// every other leg, different wall clock.
    #[serde(default)]
    pub pipelined: SchedulerBench,
    /// `pipelined.events_per_sec / sharded.events_per_sec` — the
    /// pipelined-vs-barrier leg (0 in pre-pipeline baselines). Like
    /// `shard_speedup`, only meaningful with `host_cpus >= shards`.
    #[serde(default)]
    pub pipeline_speedup: f64,
    /// CPUs available on the host that recorded this benchmark. Wall-clock
    /// numbers are not comparable across different values; the baseline
    /// check refuses mismatched hosts (0 = unknown, pre-PR3 baselines).
    #[serde(default)]
    pub host_cpus: usize,
    /// Closed-loop leg: a recursive-doubling AllReduce task program on the
    /// same 1,056-node system under minimal routing, run to drain
    /// (calendar scheduler, single shard). Zeroed in pre-PR6 baselines.
    #[serde(default)]
    pub closed_loop: SchedulerBench,
    /// Simulated job-completion time of the closed-loop leg (slowest rank,
    /// microseconds; 0.0 in pre-PR6 baselines).
    #[serde(default)]
    pub closed_loop_jct_us: f64,
    /// Ranks that finished their program in the closed-loop leg (must be
    /// 1,056 in a fresh record; 0 in pre-PR6 baselines).
    #[serde(default)]
    pub closed_loop_ranks: u64,
    /// Faulted leg: the open-loop workload under **UGAL-G** with 5 % of
    /// the global links killed mid-window — measures the cost of liveness
    /// checks and dead-port fallbacks on the hot path. Zeroed in pre-PR7
    /// baselines.
    #[serde(default)]
    pub faulted: SchedulerBench,
    /// `faulted.events_per_sec / ugal_healthy.events_per_sec` — how much
    /// the fault machinery slows the same algorithm on the same traffic
    /// (0.0 in pre-PR7 baselines).
    #[serde(default)]
    pub fault_overhead_ratio: f64,
    /// Packets the faulted leg dropped (in-flight on dying links).
    #[serde(default)]
    pub faulted_dropped: u64,
    /// Scale leg: UR on the 110,976-node Dragonfly under Q-adaptive with
    /// streaming sketches and paged Q-tables, sharded + pipelined. Run
    /// once (it is minutes, not milliseconds). Zeroed in pre-PR8
    /// baselines.
    #[serde(default)]
    pub scale: SchedulerBench,
    /// Compute nodes of the scale leg's system (0 in pre-PR8 baselines).
    #[serde(default)]
    pub scale_nodes: usize,
    /// End-of-run `memory_bytes` rollup of the scale leg (Q-tables +
    /// packet arena + metric accumulators) — the bounded-memory number the
    /// CI budget check pins. Capacity-derived, so it is *not* part of any
    /// bit-for-bit contract, but at fixed settings it is stable enough to
    /// gate against a generous ceiling.
    #[serde(default)]
    pub scale_memory_bytes: u64,
    /// Packets the scale leg delivered inside its window (sanity: the
    /// streamed percentiles are meaningless if nothing arrived).
    #[serde(default)]
    pub scale_delivered: u64,
    /// Binary-vs-JSON checkpoint codec comparison on a 110k-node
    /// snapshot (zeroed in pre-PR10 baselines).
    #[serde(default)]
    pub snapshot: SnapshotBench,
    /// True when the host had fewer CPUs than the sharded legs have
    /// shards, so the lockstep windows serialised and `shard_speedup` /
    /// `pipeline_speedup` measure **sharding overhead only**, not
    /// parallel speedup. Recorded so a 1-CPU host's 0.8x "speedup" is
    /// never mistaken for a parallelism regression (false in pre-PR10
    /// baselines, including those recorded on small hosts).
    #[serde(default)]
    pub speedups_overhead_only: bool,
}

/// Quick-mode measurement window (simulated ns) — also used by the
/// `engine_events` criterion bench so its A/B numbers measure the exact
/// workload recorded in `BENCH_PR2.json`.
pub const QUICK_MEASURE_NS: u64 = 10_000;

/// Full-mode measurement window (simulated ns).
pub const FULL_MEASURE_NS: u64 = 50_000;

/// Simulated time of the measurement window (ns).
fn measure_ns(quick: bool) -> u64 {
    if quick {
        QUICK_MEASURE_NS
    } else {
        FULL_MEASURE_NS
    }
}

/// The canonical smoke workload, shared by [`run_smoke`] and the
/// `engine_events` criterion bench so both always measure the same thing:
/// uniform-random traffic at 30 % load on the 1,056-node system under
/// minimal routing (the cheapest agent, so the engine itself dominates).
pub fn smoke_workload(scheduler: SchedulerKind, measure_ns: u64, seed: u64) -> SimulationBuilder {
    smoke_workload_sharded(scheduler, ShardKind::Single, false, measure_ns, seed)
}

/// The smoke workload on the conservative-parallel engine, in the barrier
/// (`pipeline = false`) or overlapped-window (`pipeline = true`) mode.
pub fn smoke_workload_sharded(
    scheduler: SchedulerKind,
    shards: ShardKind,
    pipeline: bool,
    measure_ns: u64,
    seed: u64,
) -> SimulationBuilder {
    let cfg = EngineConfig {
        scheduler,
        shards,
        pipeline,
        ..EngineConfig::default()
    };
    SimulationBuilder::new(DragonflyConfig::paper_1056())
        .routing(RoutingSpec::Minimal)
        .traffic(TrafficSpec::UniformRandom)
        .offered_load(0.3)
        .warmup_ns(0)
        .measure_ns(measure_ns)
        .seed(seed)
        .engine_config(cfg)
}

/// Simulated-time cap for the closed-loop leg (it normally drains far
/// earlier; hitting the cap means ranks were left unfinished).
pub const CLOSED_LOOP_DRAIN_CAP_NS: u64 = 100_000_000;

/// The closed-loop bench leg: every rank of the 1,056-node system runs a
/// recursive-doubling AllReduce (2 messages per pairwise exchange) under
/// minimal routing, and the run ends when the job drains rather than at a
/// wall of simulated time. Completion-driven injection exercises a
/// different engine path than the open-loop smoke workload: task wake-ups,
/// per-source receive matching and the drain loop.
pub fn closed_loop_workload(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DragonflyConfig::paper_1056())
        .routing(RoutingSpec::Minimal)
        .workload(WorkloadSpec::AllReduce { messages: 2 })
        .warmup_ns(0)
        .measure_ns(CLOSED_LOOP_DRAIN_CAP_NS)
        .seed(seed)
}

/// Fraction of global links the faulted bench leg kills.
pub const FAULTED_LINK_FRACTION: f64 = 0.05;

/// The open-loop smoke traffic under UGAL-G, optionally with a fault
/// schedule — the faulted bench leg and its healthy reference point.
pub fn ugal_workload(measure_ns: u64, seed: u64, faults: Vec<FaultSpecEntry>) -> SimulationBuilder {
    SimulationBuilder::new(DragonflyConfig::paper_1056())
        .routing(RoutingSpec::UgalG)
        .traffic(TrafficSpec::UniformRandom)
        .offered_load(0.3)
        .warmup_ns(0)
        .measure_ns(measure_ns)
        .seed(seed)
        .faults(faults)
}

/// The faulted leg's schedule: [`FAULTED_LINK_FRACTION`] of the global
/// links die halfway through the measurement window (seeded by the bench
/// seed, so the same links die on every iteration).
pub fn faulted_schedule(measure_ns: u64, seed: u64) -> Vec<FaultSpecEntry> {
    vec![FaultSpecEntry::random_global_down(
        measure_ns as f64 / 2_000.0, // ns → µs, halfway through the window
        FAULTED_LINK_FRACTION,
        seed,
    )]
}

/// Run the faulted-UGAL leg: measure healthy UGAL-G and UGAL-G with the
/// mid-window link loss, returning the faulted measurement, the
/// faulted-over-healthy throughput ratio and the faulted run's drop count.
fn run_faulted(measure_ns: u64, seed: u64, iterations: u32) -> (SchedulerBench, f64, u64) {
    let mut healthy_rate: f64 = 0.0;
    let mut best = SchedulerBench::default();
    let mut dropped = 0;
    for _ in 0..iterations.max(1) {
        let healthy = ugal_workload(measure_ns, seed, Vec::new()).run();
        healthy_rate =
            healthy_rate.max(healthy.events_processed as f64 / healthy.wall_seconds.max(1e-9));
        let report = ugal_workload(measure_ns, seed, faulted_schedule(measure_ns, seed)).run();
        let rate = report.events_processed as f64 / report.wall_seconds.max(1e-9);
        if rate > best.events_per_sec {
            best = SchedulerBench {
                events_per_sec: rate,
                wall_s: report.wall_seconds,
                events: report.events_processed,
            };
        }
        dropped = report.dropped_packets;
    }
    (best, best.events_per_sec / healthy_rate.max(1e-9), dropped)
}

/// Run the closed-loop leg, returning the throughput measurement plus the
/// simulated `(job_completion_us, ranks_finished)` of the job.
fn run_closed_loop(seed: u64, iterations: u32) -> (SchedulerBench, f64, u64) {
    let mut best = SchedulerBench::default();
    let mut jct_us = 0.0;
    let mut ranks = 0;
    for _ in 0..iterations.max(1) {
        let report = closed_loop_workload(seed).run();
        let rate = report.events_processed as f64 / report.wall_seconds.max(1e-9);
        if rate > best.events_per_sec {
            best = SchedulerBench {
                events_per_sec: rate,
                wall_s: report.wall_seconds,
                events: report.events_processed,
            };
        }
        jct_us = report.job_completion_us;
        ranks = report.ranks_finished;
    }
    (best, jct_us, ranks)
}

/// The scale leg's system: a 110,976-node Dragonfly (p=16, a=24, h=12 →
/// 289 groups, 6,936 routers) — two orders of magnitude beyond the paper's
/// 1,056 nodes. Its two-level Q-tables have 4,624 rows per router, above
/// the default `qtable_page_rows_threshold` of 4,096, so the engine picks
/// the lazily paged representation without any override.
pub fn scale_system() -> DragonflyConfig {
    DragonflyConfig {
        p: 16,
        a: 24,
        h: 12,
    }
}

/// Offered load and measurement window of the scale leg. The load is kept
/// low (5% quick / 30% full) and the window short: at 110k nodes even a
/// microsecond of simulated time is tens of millions of events, and every
/// packet a router forwards can materialise a new Q-table page, so these
/// settings bound both the wall clock and the memory the leg reports.
pub fn scale_params(quick: bool) -> (f64, u64) {
    if quick {
        (0.05, 1_500)
    } else {
        (0.3, 2_000)
    }
}

/// The scale-leg workload: UR on the 110,976-node system under Q-adaptive
/// (paper parameters) with the streaming latency sketch, a 500 ns
/// time-series window, and the sharded engine with the pipeline on — the
/// exact bounded-memory configuration the ROADMAP's 100x-scale item asks
/// for.
pub fn scale_workload(quick: bool, shards: usize, seed: u64) -> SimulationBuilder {
    let (load, measure_ns) = scale_params(quick);
    let cfg = EngineConfig {
        shards: ShardKind::Fixed(shards),
        pipeline: true,
        ..EngineConfig::default()
    };
    SimulationBuilder::new(scale_system())
        .routing(RoutingSpec::QAdaptive(
            qadaptive_core::QAdaptiveParams::paper_1056(),
        ))
        .traffic(TrafficSpec::UniformRandom)
        .offered_load(load)
        .warmup_ns(0)
        .measure_ns(measure_ns)
        .series_bin_ns(500)
        .seed(seed)
        .streaming_metrics(true)
        .engine_config(cfg)
}

/// Run the scale leg once (it is far too large to iterate), returning the
/// throughput measurement, the node count, the `memory_bytes` rollup and
/// the delivered-packet count.
fn run_scale(quick: bool, shards: usize, seed: u64) -> (SchedulerBench, usize, u64, u64) {
    let report = scale_workload(quick, shards, seed).run();
    assert!(
        report.memory_bytes > 0,
        "the scale leg must report its memory rollup"
    );
    assert!(
        report.packets_delivered > 0,
        "the scale window must deliver packets (streamed stats would be empty)"
    );
    let bench = SchedulerBench {
        events_per_sec: report.events_processed as f64 / report.wall_seconds.max(1e-9),
        wall_s: report.wall_seconds,
        events: report.events_processed,
    };
    (
        bench,
        scale_system().nodes(),
        report.memory_bytes,
        report.packets_delivered,
    )
}

/// Capture one mid-run checkpoint of the (quick) scale workload and
/// measure both on-disk encodings through the real save/load path. The
/// quick configuration is used regardless of `--full`: the snapshot is
/// about codec size/speed on a 110k-node state, and doubling the full
/// leg's minutes-long run to re-capture a bigger one buys nothing.
fn run_snapshot(shards: usize, seed: u64) -> SnapshotBench {
    use dragonfly_sim::checkpoint::{CheckpointFormat, RunCheckpoint};
    let (_, measure_ns) = scale_params(true);
    let spec = scale_workload(true, shards, seed).to_spec("bench-scale-snapshot");
    let mut last: Option<RunCheckpoint> = None;
    spec.run_checkpointed(None, Some(measure_ns / 2), |ck| last = Some(ck))
        .expect("the scale snapshot run succeeds");
    let ck = last.expect("the scale run must produce at least one checkpoint");

    let dir = std::env::temp_dir().join("qadaptive-bench-snapshot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("scale.ckpt.json");
    let bin_path = dir.join("scale.ckpt");

    let timed = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    let json_save_s = timed(&mut || {
        ck.save_format(&json_path, CheckpointFormat::Json).unwrap();
    });
    let binary_save_s = timed(&mut || {
        ck.save_format(&bin_path, CheckpointFormat::Binary).unwrap();
    });
    let json_load_s = timed(&mut || {
        RunCheckpoint::load(&json_path).unwrap();
    });
    let binary_load_s = timed(&mut || {
        RunCheckpoint::load(&bin_path).unwrap();
    });
    let json_bytes = std::fs::metadata(&json_path).map(|m| m.len()).unwrap_or(0);
    let binary_bytes = std::fs::metadata(&bin_path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
    SnapshotBench {
        json_bytes,
        binary_bytes,
        size_ratio: json_bytes as f64 / binary_bytes.max(1) as f64,
        json_save_s,
        binary_save_s,
        json_load_s,
        binary_load_s,
        save_speedup: json_save_s / binary_save_s.max(1e-9),
        load_speedup: json_load_s / binary_load_s.max(1e-9),
    }
}

fn run_one(
    scheduler: SchedulerKind,
    shards: ShardKind,
    pipeline: bool,
    measure_ns: u64,
    seed: u64,
    iterations: u32,
) -> SchedulerBench {
    let mut best = SchedulerBench::default();
    for _ in 0..iterations.max(1) {
        let report = smoke_workload_sharded(scheduler, shards, pipeline, measure_ns, seed).run();
        let rate = report.events_processed as f64 / report.wall_seconds.max(1e-9);
        if rate > best.events_per_sec {
            best = SchedulerBench {
                events_per_sec: rate,
                wall_s: report.wall_seconds,
                events: report.events_processed,
            };
        }
    }
    best
}

/// The default shard count of the sharded bench leg.
pub const BENCH_SHARDS: usize = 4;

/// Run the smoke workload under both schedulers, once on the sharded
/// engine in barrier mode and once with the overlapped-window pipeline
/// (`shards` shards, 0 = the default [`BENCH_SHARDS`]).
pub fn run_smoke_sharded(quick: bool, seed: u64, shards: usize) -> SmokeBench {
    let measure_ns = measure_ns(quick);
    let iterations = if quick { 2 } else { 3 };
    let shards = if shards == 0 { BENCH_SHARDS } else { shards };
    let calendar = run_one(
        SchedulerKind::Calendar,
        ShardKind::Single,
        false,
        measure_ns,
        seed,
        iterations,
    );
    let binary_heap = run_one(
        SchedulerKind::BinaryHeap,
        ShardKind::Single,
        false,
        measure_ns,
        seed,
        iterations,
    );
    let sharded = run_one(
        SchedulerKind::Calendar,
        ShardKind::Fixed(shards),
        false,
        measure_ns,
        seed,
        iterations,
    );
    let pipelined = run_one(
        SchedulerKind::Calendar,
        ShardKind::Fixed(shards),
        true,
        measure_ns,
        seed,
        iterations,
    );
    assert_eq!(
        sharded.events, calendar.events,
        "sharded and single-shard runs must process identical event streams"
    );
    assert_eq!(
        pipelined.events, sharded.events,
        "pipelined and barrier runs must process identical event streams"
    );
    let (closed_loop, closed_loop_jct_us, closed_loop_ranks) = run_closed_loop(seed, iterations);
    assert_eq!(
        closed_loop_ranks,
        DragonflyConfig::paper_1056().nodes() as u64,
        "the closed-loop AllReduce must drain (cap {CLOSED_LOOP_DRAIN_CAP_NS} ns hit?)"
    );
    let (faulted, fault_overhead_ratio, faulted_dropped) =
        run_faulted(measure_ns, seed, iterations);
    let (scale, scale_nodes, scale_memory_bytes, scale_delivered) = run_scale(quick, shards, seed);
    let snapshot = run_snapshot(shards, seed);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    SmokeBench {
        workload: "min_ur_0.3_1056".to_string(),
        topology: dragonfly_topology::TopologySpec::from(DragonflyConfig::paper_1056()).to_string(),
        nodes: DragonflyConfig::paper_1056().nodes(),
        measure_ns,
        events: calendar.events,
        events_per_sec: calendar.events_per_sec,
        wall_s: calendar.wall_s,
        speedup: calendar.events_per_sec / binary_heap.events_per_sec.max(1e-9),
        shard_speedup: sharded.events_per_sec / calendar.events_per_sec.max(1e-9),
        pipeline_speedup: pipelined.events_per_sec / sharded.events_per_sec.max(1e-9),
        calendar,
        binary_heap,
        sharded,
        pipelined,
        shards,
        closed_loop,
        closed_loop_jct_us,
        closed_loop_ranks,
        faulted,
        fault_overhead_ratio,
        faulted_dropped,
        scale,
        scale_nodes,
        scale_memory_bytes,
        scale_delivered,
        snapshot,
        speedups_overhead_only: host_cpus < shards,
        host_cpus,
    }
}

/// Run the smoke workload under both schedulers (and the default sharded
/// leg).
pub fn run_smoke(quick: bool, seed: u64) -> SmokeBench {
    run_smoke_sharded(quick, seed, 0)
}

/// Compare a fresh run against a committed baseline: fail when the
/// calendar events/sec dropped more than `tolerance` (a fraction, e.g.
/// 0.3 = 30 %) below the baseline. The threshold is deliberately loose so
/// shared/noisy CI runners do not produce flaky failures.
///
/// Wall-clock rates are only comparable between identical hosts, so a
/// baseline whose recorded `host_cpus` differs from the current host is
/// **refused with an error** instead of silently gating on numbers from a
/// different machine. Pass `allow_cpu_mismatch = true` (the CLI's
/// `--allow-cpu-mismatch`) to accept such a baseline; the check then
/// gates *only* on the machine-independent calendar-over-heap speedup —
/// a ratio of two runs on the same machine.
///
/// Even on a matching host the absolute rate can wobble (shared/noisy CI
/// runners), so a run below the absolute floor still gets the
/// speedup-ratio second chance: if the ratio held up, the slowness is
/// hardware contention, not a code regression.
pub fn check_against_baseline(
    current: &SmokeBench,
    baseline: &SmokeBench,
    tolerance: f64,
    allow_cpu_mismatch: bool,
) -> Result<String, String> {
    // Refuse to compare incomparable runs (e.g. a --full baseline against
    // a --quick CI run): both fields are recorded in the JSON.
    if current.workload != baseline.workload || current.measure_ns != baseline.measure_ns {
        return Err(format!(
            "baseline mismatch: current run is {} over {} ns but the baseline records {} over \
             {} ns — regenerate the baseline with the same bench mode",
            current.workload, current.measure_ns, baseline.workload, baseline.measure_ns
        ));
    }
    // `host_cpus == 0` means a pre-PR3 baseline that never recorded the
    // host; those keep the legacy behaviour (absolute gate + ratio
    // fallback) since there is nothing to compare against.
    let cpu_mismatch = baseline.host_cpus != 0 && baseline.host_cpus != current.host_cpus;
    if cpu_mismatch && !allow_cpu_mismatch {
        return Err(format!(
            "baseline host mismatch: the baseline was recorded on a {}-CPU host but this host \
             has {} CPUs, so its wall-clock events/sec are not comparable — regenerate the \
             baseline on this host, or pass --allow-cpu-mismatch to gate only on the \
             machine-independent calendar-vs-heap speedup ratio",
            baseline.host_cpus, current.host_cpus
        ));
    }
    if cpu_mismatch {
        // Machine-independent gates still apply across hosts: the scale
        // leg's memory rollup is capacity-derived, not wall-clock-derived.
        check_scale_memory(current, baseline, tolerance)?;
        let speedup_floor = baseline.speedup * (1.0 - tolerance);
        return if baseline.speedup > 0.0 && current.speedup >= speedup_floor {
            Ok(format!(
                "different host ({} vs {} CPUs): skipped the wall-clock gate; the \
                 machine-independent speedup ratio held ({:.2}x vs baseline {:.2}x)",
                current.host_cpus, baseline.host_cpus, current.speedup, baseline.speedup
            ))
        } else {
            Err(format!(
                "events/sec regression: speedup ratio {:.2}x fell below the baseline's {:.2}x \
                 floor {:.2}x (wall-clock gate skipped: different host, {} vs {} CPUs)",
                current.speedup,
                baseline.speedup,
                speedup_floor,
                current.host_cpus,
                baseline.host_cpus
            ))
        };
    }
    check_scale_memory(current, baseline, tolerance)?;
    // Scale-leg throughput gate (same-host only, like every wall-clock
    // gate). Skipped against pre-PR8 baselines that never ran the leg.
    if baseline.scale.events_per_sec > 0.0 && current.scale.events_per_sec > 0.0 {
        let scale_floor = baseline.scale.events_per_sec * (1.0 - tolerance);
        if current.scale.events_per_sec < scale_floor {
            return Err(format!(
                "scale-leg events/sec regression: current {:.0} vs baseline {:.0} (floor {:.0})",
                current.scale.events_per_sec, baseline.scale.events_per_sec, scale_floor
            ));
        }
    }
    let floor = baseline.events_per_sec * (1.0 - tolerance);
    let verdict = format!(
        "current {:.0} events/s vs baseline {:.0} events/s (floor {:.0}, speedup over heap {:.2}x)",
        current.events_per_sec, baseline.events_per_sec, floor, current.speedup
    );
    if current.events_per_sec >= floor {
        return Ok(verdict);
    }
    let speedup_floor = baseline.speedup * (1.0 - tolerance);
    if baseline.speedup > 0.0 && current.speedup >= speedup_floor {
        return Ok(format!(
            "{verdict}; absolute rate below floor but the machine-independent \
             speedup ratio held ({:.2}x vs baseline {:.2}x) — slower hardware, \
             not a code regression",
            current.speedup, baseline.speedup
        ));
    }
    Err(format!("events/sec regression: {verdict}"))
}

/// The machine-independent scale-leg memory budget: fail when the
/// current rollup exceeds the baseline's by more than `tolerance`.
/// Skipped against baselines that never ran the leg (rollup 0).
fn check_scale_memory(
    current: &SmokeBench,
    baseline: &SmokeBench,
    tolerance: f64,
) -> Result<(), String> {
    if baseline.scale_memory_bytes > 0 && current.scale_memory_bytes > 0 {
        let ceiling = (baseline.scale_memory_bytes as f64 * (1.0 + tolerance)) as u64;
        if current.scale_memory_bytes > ceiling {
            return Err(format!(
                "scale-leg memory regression: current {} bytes vs baseline {} (ceiling {})",
                current.scale_memory_bytes, baseline.scale_memory_bytes, ceiling
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(rate: f64) -> SmokeBench {
        SmokeBench {
            events_per_sec: rate,
            ..SmokeBench::default()
        }
    }

    #[test]
    fn baseline_check_applies_tolerance() {
        let baseline = bench(1_000_000.0);
        assert!(check_against_baseline(&bench(1_000_000.0), &baseline, 0.3, false).is_ok());
        assert!(check_against_baseline(&bench(750_000.0), &baseline, 0.3, false).is_ok());
        assert!(check_against_baseline(&bench(650_000.0), &baseline, 0.3, false).is_err());
        assert!(check_against_baseline(&bench(1_500_000.0), &baseline, 0.3, false).is_ok());
    }

    #[test]
    fn baseline_check_rejects_mismatched_workloads() {
        let current = bench(1_000_000.0);
        let mut other_window = bench(1_000_000.0);
        other_window.measure_ns = 50_000;
        let err = check_against_baseline(&current, &other_window, 0.3, false).unwrap_err();
        assert!(err.contains("baseline mismatch"), "{err}");
        let mut other_workload = bench(1_000_000.0);
        other_workload.workload = "something_else".to_string();
        assert!(check_against_baseline(&current, &other_workload, 0.3, false).is_err());
    }

    #[test]
    fn baseline_check_falls_back_to_the_speedup_ratio() {
        let mut baseline = bench(1_000_000.0);
        baseline.speedup = 1.6;
        // Way below the absolute floor, but the calendar-vs-heap ratio on
        // the (slower) current machine held: hardware, not a regression.
        let mut slow_machine = bench(400_000.0);
        slow_machine.speedup = 1.55;
        assert!(check_against_baseline(&slow_machine, &baseline, 0.3, false).is_ok());
        // Both the absolute rate and the ratio collapsed: real regression.
        let mut regressed = bench(400_000.0);
        regressed.speedup = 1.0;
        assert!(check_against_baseline(&regressed, &baseline, 0.3, false).is_err());
    }

    #[test]
    fn baseline_check_refuses_a_different_host() {
        // A baseline recorded on a differently sized host must be refused
        // with a clear error, not silently gated on its wall-clock rate.
        let mut baseline = bench(1_000_000.0);
        baseline.host_cpus = 16;
        baseline.speedup = 1.6;
        let mut current = bench(980_000.0);
        current.host_cpus = 4;
        current.speedup = 1.58;
        let err = check_against_baseline(&current, &baseline, 0.3, false).unwrap_err();
        assert!(err.contains("host mismatch"), "{err}");
        assert!(err.contains("16-CPU"), "{err}");
        assert!(err.contains("--allow-cpu-mismatch"), "{err}");
        // Same host count: the normal absolute gate applies.
        current.host_cpus = 16;
        assert!(check_against_baseline(&current, &baseline, 0.3, false).is_ok());
        // Pre-PR3 baselines never recorded the host (0 = unknown): legacy
        // behaviour, no refusal.
        baseline.host_cpus = 0;
        current.host_cpus = 4;
        assert!(check_against_baseline(&current, &baseline, 0.3, false).is_ok());
    }

    #[test]
    fn allowed_cpu_mismatch_gates_only_on_the_ratio() {
        let mut baseline = bench(1_000_000.0);
        baseline.host_cpus = 16;
        baseline.speedup = 1.6;
        // Absolute rate *above* the floor but the ratio collapsed: with
        // --allow-cpu-mismatch the wall clock is ignored entirely, so this
        // is a failure (on the old path it would silently pass).
        let mut fast_but_regressed = bench(2_000_000.0);
        fast_but_regressed.host_cpus = 64;
        fast_but_regressed.speedup = 0.9;
        let err = check_against_baseline(&fast_but_regressed, &baseline, 0.3, true).unwrap_err();
        assert!(err.contains("speedup ratio"), "{err}");
        // Ratio held: passes regardless of the wall-clock numbers.
        let mut slow_but_healthy = bench(10_000.0);
        slow_but_healthy.host_cpus = 1;
        slow_but_healthy.speedup = 1.55;
        let verdict = check_against_baseline(&slow_but_healthy, &baseline, 0.3, true).unwrap();
        assert!(verdict.contains("skipped the wall-clock gate"), "{verdict}");
    }

    #[test]
    fn smoke_bench_serialises_round_trip() {
        let mut b = bench(123.0);
        b.workload = "min_ur_0.3_1056".to_string();
        b.speedup = 1.7;
        b.calendar.events = 42;
        b.pipelined.events = 42;
        b.pipeline_speedup = 1.3;
        b.host_cpus = 8;
        let json = serde_json::to_string_pretty(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, b.workload);
        assert_eq!(back.calendar.events, 42);
        assert_eq!(back.pipelined.events, 42);
        assert_eq!(back.host_cpus, 8);
        assert!((back.speedup - 1.7).abs() < 1e-12);
        assert!((back.pipeline_speedup - 1.3).abs() < 1e-12);
    }

    #[test]
    fn pre_pipeline_baselines_deserialise_with_defaulted_legs() {
        // BENCH_PR3.json predates the pipelined leg; it must still load.
        let legacy = r#"{"workload":"min_ur_0.3_1056","nodes":1056,"measure_ns":10000,
            "events":5,"events_per_sec":1.0,"wall_s":1.0,
            "calendar":{"events_per_sec":1.0,"wall_s":1.0,"events":5},
            "binary_heap":{"events_per_sec":0.5,"wall_s":2.0,"events":5},
            "speedup":2.0}"#;
        let back: SmokeBench = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.pipelined.events, 0);
        assert_eq!(back.pipeline_speedup, 0.0);
        assert_eq!(back.host_cpus, 0);
        assert_eq!(back.topology, "", "pre-topology baselines default empty");
        // The closed-loop leg is newer still (PR6): it must also default.
        assert_eq!(back.closed_loop.events, 0);
        assert_eq!(back.closed_loop_jct_us, 0.0);
        assert_eq!(back.closed_loop_ranks, 0);
        // As must the faulted leg (PR7).
        assert_eq!(back.faulted.events, 0);
        assert_eq!(back.fault_overhead_ratio, 0.0);
        assert_eq!(back.faulted_dropped, 0);
        // And the bounded-memory scale leg (PR8).
        assert_eq!(back.scale.events, 0);
        assert_eq!(back.scale_nodes, 0);
        assert_eq!(back.scale_memory_bytes, 0);
        assert_eq!(back.scale_delivered, 0);
    }

    #[test]
    fn snapshot_leg_round_trips_and_defaults() {
        let mut b = bench(1.0);
        b.snapshot.json_bytes = 1_000_000;
        b.snapshot.binary_bytes = 150_000;
        b.snapshot.size_ratio = 6.7;
        b.snapshot.save_speedup = 8.1;
        b.snapshot.load_speedup = 9.2;
        b.speedups_overhead_only = true;
        let json = serde_json::to_string(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.snapshot.json_bytes, 1_000_000);
        assert_eq!(back.snapshot.binary_bytes, 150_000);
        assert!((back.snapshot.size_ratio - 6.7).abs() < 1e-12);
        assert!((back.snapshot.save_speedup - 8.1).abs() < 1e-12);
        assert!((back.snapshot.load_speedup - 9.2).abs() < 1e-12);
        assert!(back.speedups_overhead_only);
        // Pre-PR10 baselines default the whole leg.
        let legacy: SmokeBench = serde_json::from_str(
            r#"{"workload":"w","nodes":1,"measure_ns":1,"events":1,
                "events_per_sec":1.0,"wall_s":1.0,
                "calendar":{"events_per_sec":1.0,"wall_s":1.0,"events":1},
                "binary_heap":{"events_per_sec":1.0,"wall_s":1.0,"events":1},
                "speedup":1.0}"#,
        )
        .unwrap();
        assert_eq!(legacy.snapshot.json_bytes, 0);
        assert!(!legacy.speedups_overhead_only);
    }

    #[test]
    fn scale_gates_fire_on_regressions() {
        let mut baseline = bench(1_000_000.0);
        baseline.scale.events_per_sec = 100_000.0;
        baseline.scale_memory_bytes = 3_000_000_000;
        // Healthy run: same scale rate, same memory.
        let mut ok = bench(1_000_000.0);
        ok.scale.events_per_sec = 100_000.0;
        ok.scale_memory_bytes = 3_000_000_000;
        assert!(check_against_baseline(&ok, &baseline, 0.3, false).is_ok());
        // Scale throughput collapsed below the floor.
        let mut slow_scale = ok.clone();
        slow_scale.scale.events_per_sec = 50_000.0;
        let err = check_against_baseline(&slow_scale, &baseline, 0.3, false).unwrap_err();
        assert!(err.contains("scale-leg events/sec"), "{err}");
        // Memory blew the ceiling.
        let mut fat = ok.clone();
        fat.scale_memory_bytes = 6_000_000_000;
        let err = check_against_baseline(&fat, &baseline, 0.3, false).unwrap_err();
        assert!(err.contains("scale-leg memory"), "{err}");
        // Pre-PR8 baselines (no scale leg) skip both gates.
        let empty_baseline = bench(1_000_000.0);
        assert!(check_against_baseline(&fat, &empty_baseline, 0.3, false).is_ok());
    }

    #[test]
    fn scale_memory_gate_is_machine_independent() {
        // With --allow-cpu-mismatch the wall-clock gates are skipped but
        // the capacity-derived memory budget still applies.
        let mut baseline = bench(1_000_000.0);
        baseline.host_cpus = 16;
        baseline.speedup = 1.6;
        baseline.scale.events_per_sec = 100_000.0;
        baseline.scale_memory_bytes = 3_000_000_000;
        let mut current = bench(10_000.0);
        current.host_cpus = 1;
        current.speedup = 1.55;
        // Scale throughput way down (different host — must NOT gate).
        current.scale.events_per_sec = 5_000.0;
        current.scale_memory_bytes = 3_100_000_000;
        assert!(check_against_baseline(&current, &baseline, 0.3, true).is_ok());
        // But a memory blow-up still fails across hosts.
        current.scale_memory_bytes = 9_000_000_000;
        let err = check_against_baseline(&current, &baseline, 0.3, true).unwrap_err();
        assert!(err.contains("scale-leg memory"), "{err}");
    }

    #[test]
    fn scale_leg_round_trips() {
        let mut b = bench(1.0);
        b.scale.events = 11;
        b.scale_nodes = 110_976;
        b.scale_memory_bytes = 3_000_000_000;
        b.scale_delivered = 123_456;
        let json = serde_json::to_string(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scale.events, 11);
        assert_eq!(back.scale_nodes, 110_976);
        assert_eq!(back.scale_memory_bytes, 3_000_000_000);
        assert_eq!(back.scale_delivered, 123_456);
    }

    #[test]
    fn scale_system_engages_the_paged_tables() {
        // The leg exists to exercise the bounded-memory representations:
        // the system must exceed 100k nodes and its two-level table rows
        // must sit above the default paging threshold.
        let cfg = scale_system();
        assert!(cfg.nodes() > 100_000, "{} nodes", cfg.nodes());
        let rows = cfg.groups() * cfg.p;
        assert!(
            rows > dragonfly_engine::config::EngineConfig::default().qtable_page_rows_threshold,
            "{rows} two-level rows must engage paging"
        );
        // Both modes keep the window short enough that the leg terminates
        // in minutes and low-loaded enough that memory stays bounded.
        for quick in [true, false] {
            let (load, measure_ns) = scale_params(quick);
            assert!(load <= 0.3 && measure_ns <= 2_000);
        }
    }

    #[test]
    fn faulted_leg_round_trips() {
        let mut b = bench(1.0);
        b.faulted.events = 9;
        b.fault_overhead_ratio = 0.93;
        b.faulted_dropped = 17;
        let json = serde_json::to_string(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faulted.events, 9);
        assert!((back.fault_overhead_ratio - 0.93).abs() < 1e-12);
        assert_eq!(back.faulted_dropped, 17);
    }

    #[test]
    fn faulted_schedule_kills_links_mid_window() {
        let schedule = faulted_schedule(10_000, 1);
        assert_eq!(schedule.len(), 1);
        assert_eq!(schedule[0].kind, "random_global_down");
        assert_eq!(schedule[0].at_us, 5.0, "halfway through a 10 µs window");
        assert_eq!(schedule[0].fraction, Some(FAULTED_LINK_FRACTION));
        schedule[0]
            .validate(0)
            .expect("the bench schedule is legal");
    }

    #[test]
    fn closed_loop_leg_round_trips() {
        let mut b = bench(1.0);
        b.closed_loop.events = 7;
        b.closed_loop_jct_us = 42.5;
        b.closed_loop_ranks = 1056;
        let json = serde_json::to_string(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.closed_loop.events, 7);
        assert!((back.closed_loop_jct_us - 42.5).abs() < 1e-12);
        assert_eq!(back.closed_loop_ranks, 1056);
    }

    #[test]
    fn fresh_benches_record_the_topology() {
        // The JSON legs must say which fabric they measured.
        let mut b = bench(1.0);
        b.topology =
            dragonfly_topology::TopologySpec::from(DragonflyConfig::paper_1056()).to_string();
        let json = serde_json::to_string(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert!(back.topology.contains("Dragonfly"), "{}", back.topology);
        assert!(back.topology.contains("N=1056"), "{}", back.topology);
    }
}
