//! The fixed engine-throughput smoke benchmark behind `qadaptive-cli
//! bench` and the CI perf-regression gate.
//!
//! One canonical workload — uniform-random traffic at 30 % load on the
//! paper's 1,056-node system under minimal routing (the cheapest agent, so
//! the engine itself dominates) — is run once per scheduler
//! implementation, plus once on the sharded conservative-parallel engine.
//! The result records simulated events per wall-clock second for each, and
//! is written to `BENCH_PR3.json` at the repository root so later PRs have
//! a perf trajectory to compare against (`BENCH_PR2.json` is the previous
//! baseline, still readable thanks to defaulted fields).

use dragonfly_engine::config::{EngineConfig, SchedulerKind, ShardKind};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use serde::{Deserialize, Serialize};

/// Throughput measurement of one scheduler on the smoke workload.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SchedulerBench {
    /// Simulated events processed per wall-clock second (best of the
    /// measured iterations).
    pub events_per_sec: f64,
    /// Wall-clock seconds of the fastest iteration.
    pub wall_s: f64,
    /// Simulated events processed by one run of the workload.
    pub events: u64,
}

/// The full smoke-benchmark record (the `BENCH_PR2.json` schema).
///
/// The top-level `events_per_sec` / `wall_s` / `events` fields describe the
/// shipping (calendar) scheduler; `binary_heap` keeps the A/B comparison
/// point and `speedup` their ratio.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SmokeBench {
    /// Workload identifier.
    pub workload: String,
    /// Number of compute nodes in the topology.
    pub nodes: usize,
    /// Measurement window in simulated ns.
    pub measure_ns: u64,
    /// Events processed by the calendar-scheduler run.
    pub events: u64,
    /// Calendar-scheduler events per wall-clock second.
    pub events_per_sec: f64,
    /// Calendar-scheduler wall-clock seconds.
    pub wall_s: f64,
    /// Detailed calendar-scheduler measurement.
    pub calendar: SchedulerBench,
    /// Detailed binary-heap measurement (the pre-calendar baseline).
    pub binary_heap: SchedulerBench,
    /// `calendar.events_per_sec / binary_heap.events_per_sec`.
    pub speedup: f64,
    /// Sharded-engine measurement (calendar scheduler, `shards` shards).
    #[serde(default)]
    pub sharded: SchedulerBench,
    /// Shard count of the sharded leg (0 in pre-shard baselines).
    #[serde(default)]
    pub shards: usize,
    /// `sharded.events_per_sec / calendar.events_per_sec` — the
    /// machine-relative intra-simulation parallel speedup. Only meaningful
    /// when the recording host had at least `shards` CPUs (see
    /// `host_cpus`); on a smaller host the lockstep windows serialise and
    /// the ratio records the sharding overhead instead.
    #[serde(default)]
    pub shard_speedup: f64,
    /// CPUs available on the host that recorded this benchmark.
    #[serde(default)]
    pub host_cpus: usize,
}

/// Quick-mode measurement window (simulated ns) — also used by the
/// `engine_events` criterion bench so its A/B numbers measure the exact
/// workload recorded in `BENCH_PR2.json`.
pub const QUICK_MEASURE_NS: u64 = 10_000;

/// Full-mode measurement window (simulated ns).
pub const FULL_MEASURE_NS: u64 = 50_000;

/// Simulated time of the measurement window (ns).
fn measure_ns(quick: bool) -> u64 {
    if quick {
        QUICK_MEASURE_NS
    } else {
        FULL_MEASURE_NS
    }
}

/// The canonical smoke workload, shared by [`run_smoke`] and the
/// `engine_events` criterion bench so both always measure the same thing:
/// uniform-random traffic at 30 % load on the 1,056-node system under
/// minimal routing (the cheapest agent, so the engine itself dominates).
pub fn smoke_workload(scheduler: SchedulerKind, measure_ns: u64, seed: u64) -> SimulationBuilder {
    smoke_workload_sharded(scheduler, ShardKind::Single, measure_ns, seed)
}

/// The smoke workload on the conservative-parallel engine.
pub fn smoke_workload_sharded(
    scheduler: SchedulerKind,
    shards: ShardKind,
    measure_ns: u64,
    seed: u64,
) -> SimulationBuilder {
    let cfg = EngineConfig {
        scheduler,
        shards,
        ..EngineConfig::default()
    };
    SimulationBuilder::new(DragonflyConfig::paper_1056())
        .routing(RoutingSpec::Minimal)
        .traffic(TrafficSpec::UniformRandom)
        .offered_load(0.3)
        .warmup_ns(0)
        .measure_ns(measure_ns)
        .seed(seed)
        .engine_config(cfg)
}

fn run_one(
    scheduler: SchedulerKind,
    shards: ShardKind,
    measure_ns: u64,
    seed: u64,
    iterations: u32,
) -> SchedulerBench {
    let mut best = SchedulerBench::default();
    for _ in 0..iterations.max(1) {
        let report = smoke_workload_sharded(scheduler, shards, measure_ns, seed).run();
        let rate = report.events_processed as f64 / report.wall_seconds.max(1e-9);
        if rate > best.events_per_sec {
            best = SchedulerBench {
                events_per_sec: rate,
                wall_s: report.wall_seconds,
                events: report.events_processed,
            };
        }
    }
    best
}

/// The default shard count of the sharded bench leg.
pub const BENCH_SHARDS: usize = 4;

/// Run the smoke workload under both schedulers and once on the sharded
/// engine with `shards` shards (0 = the default [`BENCH_SHARDS`]).
pub fn run_smoke_sharded(quick: bool, seed: u64, shards: usize) -> SmokeBench {
    let measure_ns = measure_ns(quick);
    let iterations = if quick { 2 } else { 3 };
    let shards = if shards == 0 { BENCH_SHARDS } else { shards };
    let calendar = run_one(
        SchedulerKind::Calendar,
        ShardKind::Single,
        measure_ns,
        seed,
        iterations,
    );
    let binary_heap = run_one(
        SchedulerKind::BinaryHeap,
        ShardKind::Single,
        measure_ns,
        seed,
        iterations,
    );
    let sharded = run_one(
        SchedulerKind::Calendar,
        ShardKind::Fixed(shards),
        measure_ns,
        seed,
        iterations,
    );
    assert_eq!(
        sharded.events, calendar.events,
        "sharded and single-shard runs must process identical event streams"
    );
    SmokeBench {
        workload: "min_ur_0.3_1056".to_string(),
        nodes: DragonflyConfig::paper_1056().nodes(),
        measure_ns,
        events: calendar.events,
        events_per_sec: calendar.events_per_sec,
        wall_s: calendar.wall_s,
        speedup: calendar.events_per_sec / binary_heap.events_per_sec.max(1e-9),
        shard_speedup: sharded.events_per_sec / calendar.events_per_sec.max(1e-9),
        calendar,
        binary_heap,
        sharded,
        shards,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Run the smoke workload under both schedulers (and the default sharded
/// leg).
pub fn run_smoke(quick: bool, seed: u64) -> SmokeBench {
    run_smoke_sharded(quick, seed, 0)
}

/// Compare a fresh run against a committed baseline: fail when the
/// calendar events/sec dropped more than `tolerance` (a fraction, e.g.
/// 0.3 = 30 %) below the baseline. The threshold is deliberately loose so
/// shared/noisy CI runners do not produce flaky failures.
///
/// The absolute rate depends on the machine that recorded the baseline, so
/// a slower runner gets a second, machine-independent chance: if the
/// calendar-over-heap speedup — a ratio of two runs on the *same* machine —
/// held up within the same tolerance, the overall slowness is hardware,
/// not a code regression, and the check passes.
pub fn check_against_baseline(
    current: &SmokeBench,
    baseline: &SmokeBench,
    tolerance: f64,
) -> Result<String, String> {
    // Refuse to compare incomparable runs (e.g. a --full baseline against
    // a --quick CI run): both fields are recorded in the JSON.
    if current.workload != baseline.workload || current.measure_ns != baseline.measure_ns {
        return Err(format!(
            "baseline mismatch: current run is {} over {} ns but the baseline records {} over \
             {} ns — regenerate the baseline with the same bench mode",
            current.workload, current.measure_ns, baseline.workload, baseline.measure_ns
        ));
    }
    let floor = baseline.events_per_sec * (1.0 - tolerance);
    let verdict = format!(
        "current {:.0} events/s vs baseline {:.0} events/s (floor {:.0}, speedup over heap {:.2}x)",
        current.events_per_sec, baseline.events_per_sec, floor, current.speedup
    );
    if current.events_per_sec >= floor {
        return Ok(verdict);
    }
    let speedup_floor = baseline.speedup * (1.0 - tolerance);
    if baseline.speedup > 0.0 && current.speedup >= speedup_floor {
        return Ok(format!(
            "{verdict}; absolute rate below floor but the machine-independent \
             speedup ratio held ({:.2}x vs baseline {:.2}x) — slower hardware, \
             not a code regression",
            current.speedup, baseline.speedup
        ));
    }
    Err(format!("events/sec regression: {verdict}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(rate: f64) -> SmokeBench {
        SmokeBench {
            events_per_sec: rate,
            ..SmokeBench::default()
        }
    }

    #[test]
    fn baseline_check_applies_tolerance() {
        let baseline = bench(1_000_000.0);
        assert!(check_against_baseline(&bench(1_000_000.0), &baseline, 0.3).is_ok());
        assert!(check_against_baseline(&bench(750_000.0), &baseline, 0.3).is_ok());
        assert!(check_against_baseline(&bench(650_000.0), &baseline, 0.3).is_err());
        assert!(check_against_baseline(&bench(1_500_000.0), &baseline, 0.3).is_ok());
    }

    #[test]
    fn baseline_check_rejects_mismatched_workloads() {
        let current = bench(1_000_000.0);
        let mut other_window = bench(1_000_000.0);
        other_window.measure_ns = 50_000;
        let err = check_against_baseline(&current, &other_window, 0.3).unwrap_err();
        assert!(err.contains("baseline mismatch"), "{err}");
        let mut other_workload = bench(1_000_000.0);
        other_workload.workload = "something_else".to_string();
        assert!(check_against_baseline(&current, &other_workload, 0.3).is_err());
    }

    #[test]
    fn baseline_check_falls_back_to_the_speedup_ratio() {
        let mut baseline = bench(1_000_000.0);
        baseline.speedup = 1.6;
        // Way below the absolute floor, but the calendar-vs-heap ratio on
        // the (slower) current machine held: hardware, not a regression.
        let mut slow_machine = bench(400_000.0);
        slow_machine.speedup = 1.55;
        assert!(check_against_baseline(&slow_machine, &baseline, 0.3).is_ok());
        // Both the absolute rate and the ratio collapsed: real regression.
        let mut regressed = bench(400_000.0);
        regressed.speedup = 1.0;
        assert!(check_against_baseline(&regressed, &baseline, 0.3).is_err());
    }

    #[test]
    fn smoke_bench_serialises_round_trip() {
        let mut b = bench(123.0);
        b.workload = "min_ur_0.3_1056".to_string();
        b.speedup = 1.7;
        b.calendar.events = 42;
        let json = serde_json::to_string_pretty(&b).unwrap();
        let back: SmokeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, b.workload);
        assert_eq!(back.calendar.events, 42);
        assert!((back.speedup - 1.7).abs() < 1e-12);
    }
}
