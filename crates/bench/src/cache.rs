//! Cached figure results: skip re-running simulation points whose spec has
//! not changed.
//!
//! Every figure panel is data — a [`SweepSpec`] grid of [`ExperimentSpec`]
//! points or a convergence [`ExperimentSpec`] — and the engine is
//! deterministic for a fixed spec, so a result keyed by the full spec
//! (topology, routing, traffic, load, windows, seed **and** the
//! engine/shard hardware config) can be reused forever. The cache is a
//! directory of JSON files named by an FNV-1a hash of the canonical spec
//! JSON plus a schema-version salt; `qadaptive-cli figure --cache-dir DIR`
//! turns it on and `--no-cache` bypasses it.
//!
//! Cached reports replay the original run's `wall_seconds` /
//! `events_processed`, so perf numbers printed from cache hits describe
//! the recording machine, not the current one — results, not timings, are
//! the contract.

use dragonfly_metrics::report::SimulationReport;
use dragonfly_sim::convergence::ConvergenceResult;
use dragonfly_sim::spec::{budget_workers, ExperimentSpec, SweepSpec};
use dragonfly_sim::sweep::{run_builders_parallel, SweepResult};
use std::path::{Path, PathBuf};

/// Bump when the cached JSON schema or the simulation semantics change in
/// a way that invalidates old results (e.g. the PR 3 event-ordering key;
/// v4: `topology` became the tagged `TopologySpec` union; v5: closed-loop
/// `workload` specs and completion-time report fields; v6: fault-injection
/// `faults` specs and the resilience report fields; v7: the `metrics`
/// mode knob, the `memory_bytes` report field and the Q-table paging
/// threshold in engine overrides).
const CACHE_VERSION: &str = "qadaptive-cache-v7";

/// 64-bit FNV-1a (no external hashing crates in the offline build).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A directory of cached simulation results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (and create if needed) a cache directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache key of one sweep point (prefix distinguishes result schemas).
    pub fn point_key(spec: &ExperimentSpec) -> String {
        Self::key("pt", spec)
    }

    /// Cache key of a convergence run.
    pub fn convergence_key(spec: &ExperimentSpec) -> String {
        Self::key("cv", spec)
    }

    fn key(prefix: &str, spec: &ExperimentSpec) -> String {
        let mut payload = String::from(CACHE_VERSION);
        payload.push('\n');
        // The canonical JSON covers everything that determines the result,
        // including the optional engine override (hardware timings). The
        // shard count, scheduler choice, pipeline flag and Q-table paging
        // threshold are *stripped* first: all four are pinned bit-for-bit
        // result-invariant (shard_differential / scheduler_differential /
        // pipeline_differential, and the paged-vs-dense pins in
        // pipeline_determinism), so a cache warmed without `--shards`
        // keeps serving hits when the user later turns sharding,
        // pipelining or table paging on or off.
        let mut canonical = spec.clone();
        if let Some(engine) = canonical.engine.as_mut() {
            engine.shards = Default::default();
            engine.scheduler = Default::default();
            engine.pipeline = dragonfly_engine::EngineConfig::default().pipeline;
            engine.qtable_page_rows_threshold =
                dragonfly_engine::EngineConfig::default().qtable_page_rows_threshold;
        }
        // `--shards` materialises a default engine override where the spec
        // had none; after stripping, a pure-default override means the
        // same hardware as no override at all.
        if canonical.engine == Some(dragonfly_engine::EngineConfig::default()) {
            canonical.engine = None;
        }
        payload.push_str(&canonical.to_json());
        format!("{prefix}_{:016x}", fnv1a(payload.as_bytes()))
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    fn load_json<T: serde::Deserialize>(&self, key: &str) -> Option<T> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        // A corrupt or schema-incompatible file is treated as a miss.
        serde_json::from_str(&text).ok()
    }

    fn store_json<T: serde::Serialize>(&self, key: &str, value: &T) {
        // Caching is best-effort: an unwritable directory degrades to
        // re-running, never to a failed figure.
        if let Ok(text) = serde_json::to_string(value) {
            let _ = std::fs::write(self.path(key), text);
        }
    }

    /// Fetch a cached sweep-point report.
    pub fn load_report(&self, key: &str) -> Option<SimulationReport> {
        self.load_json(key)
    }

    /// Store a sweep-point report.
    pub fn store_report(&self, key: &str, report: &SimulationReport) {
        self.store_json(key, report);
    }

    /// Fetch a cached convergence result.
    pub fn load_convergence(&self, key: &str) -> Option<ConvergenceResult> {
        self.load_json(key)
    }

    /// Store a convergence result.
    pub fn store_convergence(&self, key: &str, result: &ConvergenceResult) {
        self.store_json(key, result);
    }
}

/// Run a sweep, serving unchanged points from `cache` and executing only
/// the misses (in parallel, with the sweep's usual thread budgeting).
/// Returns the full in-order result plus the number of cache hits.
pub fn run_sweep_cached(
    sweep: &SweepSpec,
    threads: usize,
    cache: Option<&ResultCache>,
) -> (SweepResult, usize) {
    let Some(cache) = cache else {
        return (sweep.run_parallel(threads), 0);
    };
    let points = sweep.points();
    let keys: Vec<String> = points.iter().map(ResultCache::point_key).collect();
    let mut reports: Vec<Option<SimulationReport>> =
        keys.iter().map(|k| cache.load_report(k)).collect();
    let hits = reports.iter().filter(|r| r.is_some()).count();
    let misses: Vec<usize> = (0..points.len())
        .filter(|i| reports[*i].is_none())
        .collect();
    if !misses.is_empty() {
        let builders = misses.iter().map(|&i| points[i].to_builder()).collect();
        let fresh =
            run_builders_parallel(builders, budget_workers(threads, sweep.shards_per_point()));
        for (&index, report) in misses.iter().zip(fresh) {
            cache.store_report(&keys[index], &report);
            reports[index] = Some(report);
        }
    }
    (
        SweepResult {
            reports: reports
                .into_iter()
                .map(|r| r.expect("every point is a hit or was just run"))
                .collect(),
        },
        hits,
    )
}

/// Run a convergence spec through the cache.
pub fn run_convergence_cached(
    spec: &ExperimentSpec,
    cache: Option<&ResultCache>,
) -> (ConvergenceResult, bool) {
    let key = ResultCache::convergence_key(spec);
    if let Some(cache) = cache {
        if let Some(hit) = cache.load_convergence(&key) {
            return (hit, true);
        }
    }
    let result = dragonfly_sim::convergence::run_convergence_spec(spec);
    if let Some(cache) = cache {
        cache.store_convergence(&key, &result);
    }
    (result, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qadaptive-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec(seed: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(DragonflyConfig::tiny());
        spec.warmup_ns = 2_000;
        spec.measure_ns = 5_000;
        spec.load = Some(0.2);
        spec.seed = Some(seed);
        spec
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = ResultCache::point_key(&tiny_spec(1));
        assert_eq!(a, ResultCache::point_key(&tiny_spec(1)), "stable");
        assert_ne!(a, ResultCache::point_key(&tiny_spec(2)), "seed-sensitive");
        // Result-relevant engine fields (hardware timings) change the key...
        let mut slow = tiny_spec(1);
        slow.engine = Some(dragonfly_engine::EngineConfig {
            global_latency_ns: 600,
            ..Default::default()
        });
        let mut default_engine = tiny_spec(1);
        default_engine.engine = Some(Default::default());
        assert_eq!(
            a,
            ResultCache::point_key(&default_engine),
            "a pure-default engine override hashes like no override"
        );
        assert_ne!(
            ResultCache::point_key(&default_engine),
            ResultCache::point_key(&slow),
            "hardware timings are part of the key"
        );
        // ...but the shard count and scheduler do not (results are pinned
        // bit-for-bit identical across both), so a warm cache survives
        // turning `--shards` on.
        let mut sharded = tiny_spec(1);
        sharded.engine = Some(dragonfly_engine::EngineConfig {
            shards: dragonfly_engine::ShardKind::Fixed(2),
            scheduler: dragonfly_engine::SchedulerKind::BinaryHeap,
            ..Default::default()
        });
        assert_eq!(
            ResultCache::point_key(&default_engine),
            ResultCache::point_key(&sharded),
            "shard/scheduler choice must not invalidate the cache"
        );
        assert_ne!(
            ResultCache::point_key(&tiny_spec(1)),
            ResultCache::convergence_key(&tiny_spec(1)),
            "result schemas do not collide"
        );
    }

    #[test]
    fn keys_change_with_the_topology_but_not_with_execution_modes() {
        use dragonfly_topology::{FatTreeConfig, HyperXConfig};
        // Same experiment on different topologies → different keys: a
        // cache warmed on the Dragonfly must never serve a fat-tree or
        // HyperX request (the result would be from the wrong fabric).
        let dragonfly = ResultCache::point_key(&tiny_spec(1));
        let mut on_fattree = tiny_spec(1);
        on_fattree.topology = FatTreeConfig::tiny().into();
        let fattree = ResultCache::point_key(&on_fattree);
        let mut on_hyperx = tiny_spec(1);
        on_hyperx.topology = HyperXConfig::tiny().into();
        let hyperx = ResultCache::point_key(&on_hyperx);
        assert_ne!(dragonfly, fattree, "fat-tree must miss a dragonfly cache");
        assert_ne!(dragonfly, hyperx, "hyperx must miss a dragonfly cache");
        assert_ne!(fattree, hyperx);
        // Different parameters of the same kind are different keys too.
        let mut bigger = tiny_spec(1);
        bigger.topology = FatTreeConfig { k: 6 }.into();
        assert_ne!(fattree, ResultCache::point_key(&bigger));
        // ...while toggling shards/pipeline on the non-Dragonfly topology
        // still hits warm (execution modes stay result-invariant).
        let mut sharded = on_fattree.clone();
        sharded.engine = Some(dragonfly_engine::EngineConfig {
            shards: dragonfly_engine::ShardKind::Fixed(2),
            pipeline: false,
            ..Default::default()
        });
        assert_eq!(
            fattree,
            ResultCache::point_key(&sharded),
            "shards/pipeline must not invalidate a fat-tree cache entry"
        );
    }

    #[test]
    fn keys_are_invariant_to_every_execution_mode_field() {
        // All three execution knobs — pipeline, shards, scheduler — are
        // pinned result-invariant by the differential suites, so none of
        // them may change the cache key: a cache warmed with the default
        // (pipelined) engine keeps serving hits after `--no-pipeline`,
        // `--shards N` or a scheduler swap, in any combination.
        let plain = ResultCache::point_key(&tiny_spec(1));
        for pipeline in [true, false] {
            for shards in [
                dragonfly_engine::ShardKind::Single,
                dragonfly_engine::ShardKind::Fixed(4),
                dragonfly_engine::ShardKind::Auto,
            ] {
                for scheduler in [
                    dragonfly_engine::SchedulerKind::Calendar,
                    dragonfly_engine::SchedulerKind::BinaryHeap,
                ] {
                    let mut spec = tiny_spec(1);
                    spec.engine = Some(dragonfly_engine::EngineConfig {
                        pipeline,
                        shards,
                        scheduler,
                        ..Default::default()
                    });
                    assert_eq!(
                        plain,
                        ResultCache::point_key(&spec),
                        "pipeline={pipeline} shards={shards:?} scheduler={scheduler:?} \
                         must not invalidate the cache"
                    );
                }
            }
        }
        // Hardware timings still matter even with execution knobs set.
        let mut slow = tiny_spec(1);
        slow.engine = Some(dragonfly_engine::EngineConfig {
            pipeline: false,
            local_latency_ns: 60,
            ..Default::default()
        });
        assert_ne!(plain, ResultCache::point_key(&slow));
    }

    #[test]
    fn keys_strip_the_paging_threshold_but_not_the_metrics_mode() {
        use dragonfly_sim::spec::{MetricsMode, MetricsSpec};
        // The Q-table representation is pinned bit-for-bit
        // result-invariant (paged-vs-dense in pipeline_determinism), so
        // forcing paging on or off must keep the cache warm...
        let plain = ResultCache::point_key(&tiny_spec(1));
        for threshold in [0, usize::MAX] {
            let mut spec = tiny_spec(1);
            spec.engine = Some(dragonfly_engine::EngineConfig {
                qtable_page_rows_threshold: threshold,
                ..Default::default()
            });
            assert_eq!(
                plain,
                ResultCache::point_key(&spec),
                "paging threshold {threshold} must not invalidate the cache"
            );
        }
        // ...while the metrics mode changes the reported percentiles
        // (bucket lower bounds vs exact order statistics), so it must be
        // part of the key.
        let mut streaming = tiny_spec(1);
        streaming.metrics = Some(MetricsSpec {
            mode: MetricsMode::Streaming,
        });
        assert_ne!(
            plain,
            ResultCache::point_key(&streaming),
            "the metrics mode determines the result"
        );
    }

    #[test]
    fn keys_are_workload_sensitive() {
        use dragonfly_workload::WorkloadSpec;
        // A closed-loop workload determines the result, so it must be part
        // of the key: same point with/without a workload, with different
        // workloads, or at different intensities must never collide.
        let open_loop = ResultCache::point_key(&tiny_spec(1));
        let mut allreduce = tiny_spec(1);
        allreduce.workload = Some(WorkloadSpec::AllReduce { messages: 4 });
        let allreduce_key = ResultCache::point_key(&allreduce);
        assert_ne!(
            open_loop, allreduce_key,
            "workload presence changes the key"
        );
        let mut alltoall = allreduce.clone();
        alltoall.workload = Some(WorkloadSpec::AllToAll { messages: 4 });
        assert_ne!(
            allreduce_key,
            ResultCache::point_key(&alltoall),
            "workload kind changes the key"
        );
        let mut heavier = allreduce.clone();
        heavier.workload = Some(WorkloadSpec::AllReduce { messages: 8 });
        assert_ne!(
            allreduce_key,
            ResultCache::point_key(&heavier),
            "workload parameters change the key"
        );
        let mut intense = allreduce.clone();
        intense.load = Some(0.7);
        assert_ne!(
            allreduce_key,
            ResultCache::point_key(&intense),
            "intensity changes the key"
        );
        // ...while execution modes still never do, workload or not.
        let mut sharded = allreduce.clone();
        sharded.engine = Some(dragonfly_engine::EngineConfig {
            shards: dragonfly_engine::ShardKind::Fixed(2),
            pipeline: false,
            scheduler: dragonfly_engine::SchedulerKind::BinaryHeap,
            ..Default::default()
        });
        assert_eq!(
            allreduce_key,
            ResultCache::point_key(&sharded),
            "execution modes must not invalidate closed-loop cache entries"
        );
    }

    #[test]
    fn warm_hit_survives_every_execution_mode_knob_under_a_workload() {
        use dragonfly_workload::WorkloadSpec;
        // End-to-end satellite contract: warm the cache with a collective
        // workload under the default engine, then toggle every
        // execution-mode knob at once (shards, scheduler, pipeline) — the
        // sweep must be served entirely from the cache with identical
        // completion metrics.
        let cache = ResultCache::new(tmp_dir("workload-toggle")).unwrap();
        let mut sweep = SweepSpec {
            name: String::new(),
            topology: DragonflyConfig::tiny().into(),
            traffics: vec![],
            workload: Some(WorkloadSpec::AllReduce { messages: 2 }),
            routings: vec![dragonfly_routing::RoutingSpec::Minimal],
            loads: vec![1.0],
            warmup_ns: 0,
            measure_ns: 10_000_000,
            seed: Some(17),
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        };
        let (first, hits_cold) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(hits_cold, 0);
        assert_eq!(first.reports[0].ranks_finished, 72);
        assert!(first.reports[0].job_completion_us > 0.0);
        sweep.engine = Some(dragonfly_engine::EngineConfig {
            shards: dragonfly_engine::ShardKind::Fixed(2),
            scheduler: dragonfly_engine::SchedulerKind::BinaryHeap,
            pipeline: false,
            ..Default::default()
        });
        let (second, hits_warm) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(
            hits_warm, 1,
            "shards + scheduler + pipeline toggles keep a workload cache warm"
        );
        assert_eq!(
            first.reports[0].job_completion_us,
            second.reports[0].job_completion_us
        );
        assert_eq!(
            first.reports[0].phase_completion_us,
            second.reports[0].phase_completion_us
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn warm_hit_survives_toggling_the_pipeline_flag() {
        // End-to-end: warm the cache with the default engine, re-run with
        // `pipeline = false` (what `--no-pipeline` produces) and the
        // sweep must be served entirely from the cache.
        let cache = ResultCache::new(tmp_dir("pipeline-toggle")).unwrap();
        let mut sweep = SweepSpec {
            name: String::new(),
            topology: DragonflyConfig::tiny().into(),
            traffics: vec![],
            workload: None,
            routings: vec![dragonfly_routing::RoutingSpec::Minimal],
            loads: vec![0.2],
            warmup_ns: 2_000,
            measure_ns: 5_000,
            seed: Some(9),
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        };
        let (first, hits_cold) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(hits_cold, 0);
        sweep.engine = Some(dragonfly_engine::EngineConfig {
            pipeline: false,
            shards: dragonfly_engine::ShardKind::Fixed(2),
            ..Default::default()
        });
        let (second, hits_warm) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(
            hits_warm, 1,
            "toggling --pipeline/--shards keeps the cache warm"
        );
        assert_eq!(
            first.reports[0].packets_delivered,
            second.reports[0].packets_delivered
        );
        assert_eq!(
            first.reports[0].mean_latency_us,
            second.reports[0].mean_latency_us
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn keys_are_fault_sensitive() {
        use dragonfly_sim::fault::FaultSpecEntry;
        // A fault schedule determines the result, so every distinguishing
        // part of it — presence, kind, target, time, fraction and fault
        // seed — must change the key; execution modes still must not.
        let clean = ResultCache::point_key(&tiny_spec(1));
        let mut faulted = tiny_spec(1);
        faulted.faults = vec![FaultSpecEntry::random_global_down(50.0, 0.05, 7)];
        let faulted_key = ResultCache::point_key(&faulted);
        assert_ne!(clean, faulted_key, "fault presence changes the key");
        let mut heavier = faulted.clone();
        heavier.faults = vec![FaultSpecEntry::random_global_down(50.0, 0.10, 7)];
        assert_ne!(
            faulted_key,
            ResultCache::point_key(&heavier),
            "the killed fraction changes the key"
        );
        let mut reseeded = faulted.clone();
        reseeded.faults = vec![FaultSpecEntry::random_global_down(50.0, 0.05, 8)];
        assert_ne!(
            faulted_key,
            ResultCache::point_key(&reseeded),
            "the fault seed changes the key"
        );
        let mut later = faulted.clone();
        later.faults = vec![FaultSpecEntry::random_global_down(60.0, 0.05, 7)];
        assert_ne!(
            faulted_key,
            ResultCache::point_key(&later),
            "the fault time changes the key"
        );
        let mut other_kind = faulted.clone();
        other_kind.faults = vec![FaultSpecEntry::router_down(50.0, 2)];
        assert_ne!(
            faulted_key,
            ResultCache::point_key(&other_kind),
            "the fault kind changes the key"
        );
        // Execution modes stay key-invariant on faulted specs too (the
        // fault determinism suites pin shards/pipeline bit-for-bit).
        let mut sharded = faulted.clone();
        sharded.engine = Some(dragonfly_engine::EngineConfig {
            shards: dragonfly_engine::ShardKind::Fixed(2),
            pipeline: false,
            ..Default::default()
        });
        assert_eq!(
            faulted_key,
            ResultCache::point_key(&sharded),
            "execution modes must not invalidate faulted cache entries"
        );
    }

    #[test]
    fn corrupted_cache_files_fall_back_to_recompute() {
        // A truncated, garbage or schema-incompatible cache file must be
        // treated as a miss (recompute and overwrite), never a panic.
        let cache = ResultCache::new(tmp_dir("corrupt")).unwrap();
        let spec = tiny_spec(11);
        let key = ResultCache::point_key(&spec);
        let fresh = spec.run();
        cache.store_report(&key, &fresh);
        assert!(cache.load_report(&key).is_some(), "sanity: clean hit");
        let path = cache.dir().join(format!("{key}.json"));
        for garbage in [
            "",                       // empty file
            "{\"packets_deliv",       // truncated mid-key
            "not json at all \u{7f}", // binary-ish garbage
            "{\"unexpected\": true}", // valid JSON, wrong schema
        ] {
            std::fs::write(&path, garbage).unwrap();
            assert!(
                cache.load_report(&key).is_none(),
                "corrupt file ({garbage:?}) must read as a miss"
            );
        }
        // And the sweep path recomputes through the corruption untouched.
        let sweep = SweepSpec {
            name: String::new(),
            topology: DragonflyConfig::tiny().into(),
            traffics: vec![],
            workload: None,
            routings: vec![dragonfly_routing::RoutingSpec::Minimal],
            loads: vec![0.1],
            warmup_ns: 2_000,
            measure_ns: 5_000,
            seed: Some(13),
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        };
        let keys: Vec<String> = sweep.points().iter().map(ResultCache::point_key).collect();
        let (first, _) = run_sweep_cached(&sweep, 1, Some(&cache));
        std::fs::write(cache.dir().join(format!("{}.json", keys[0])), "garbage").unwrap();
        let (recomputed, hits) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(hits, 0, "corrupt entry is a miss, not a panic");
        assert_eq!(
            first.reports[0].packets_delivered,
            recomputed.reports[0].packets_delivered
        );
        let (rewarmed, hits_after) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(hits_after, 1, "the recompute repaired the cache entry");
        assert_eq!(
            first.reports[0].mean_latency_us,
            rewarmed.reports[0].mean_latency_us
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn reports_round_trip_through_the_cache() {
        let cache = ResultCache::new(tmp_dir("report")).unwrap();
        let spec = tiny_spec(3);
        let key = ResultCache::point_key(&spec);
        assert!(cache.load_report(&key).is_none());
        let report = spec.run();
        cache.store_report(&key, &report);
        let cached = cache.load_report(&key).expect("hit after store");
        assert_eq!(cached.packets_delivered, report.packets_delivered);
        assert_eq!(cached.mean_latency_us, report.mean_latency_us);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cached_sweep_skips_unchanged_points() {
        let cache = ResultCache::new(tmp_dir("sweep")).unwrap();
        let sweep = SweepSpec {
            name: String::new(),
            topology: DragonflyConfig::tiny().into(),
            traffics: vec![],
            workload: None,
            routings: vec![dragonfly_routing::RoutingSpec::Minimal],
            loads: vec![0.1, 0.3],
            warmup_ns: 2_000,
            measure_ns: 5_000,
            seed: Some(5),
            seeds_per_point: None,
            engine: None,
            series_bin_ns: None,
            faults: Vec::new(),
            metrics: None,
        };
        let (first, hits_first) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(hits_first, 0, "cold cache");
        let (second, hits_second) = run_sweep_cached(&sweep, 1, Some(&cache));
        assert_eq!(hits_second, 2, "warm cache serves every point");
        for (a, b) in first.reports.iter().zip(second.reports.iter()) {
            assert_eq!(a.packets_delivered, b.packets_delivered);
            assert_eq!(a.mean_latency_us, b.mean_latency_us);
            assert_eq!(a.offered_load, b.offered_load);
        }
        // A different seed is a different point: misses again.
        let mut reseeded = sweep.clone();
        reseeded.seed = Some(6);
        let (_, hits_reseeded) = run_sweep_cached(&reseeded, 1, Some(&cache));
        assert_eq!(hits_reseeded, 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn convergence_results_cache_too() {
        let cache = ResultCache::new(tmp_dir("conv")).unwrap();
        let mut spec = tiny_spec(7);
        spec.series_bin_ns = Some(2_000);
        let (fresh, was_hit) = run_convergence_cached(&spec, Some(&cache));
        assert!(!was_hit);
        let (cached, was_hit) = run_convergence_cached(&spec, Some(&cache));
        assert!(was_hit);
        assert_eq!(
            fresh.report.packets_delivered,
            cached.report.packets_delivered
        );
        assert_eq!(fresh.series.len(), cached.series.len());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
