//! # dragonfly-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! Q-adaptive paper, plus Criterion micro-benchmarks of the building
//! blocks.
//!
//! ## Figure / table binaries
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — Dragonfly configurations |
//! | `fig5` | Figure 5 — latency / throughput / hops vs offered load (1,056 nodes) |
//! | `fig6` | Figure 6 — packet-latency distribution and tail latency (1,056 nodes) |
//! | `fig7` | Figure 7 — convergence from an empty network |
//! | `fig8` | Figure 8 — dynamic offered loads |
//! | `fig9` | Figure 9 — 2,550-node case study (UR, ADV+1, Stencil, Many-to-Many, Random Neighbors) |
//! | `ablation_maxq` | Section 2.3.2 — why naive Q-routing needs a per-pattern maxQ |
//! | `table_memory` | Section 4 — two-level Q-table memory claim |
//!
//! Every binary accepts `--quick` (default: reduced simulated time, fewer
//! load points) and `--full` (paper-scale measurement windows), plus
//! `--threads N` to bound the sweep parallelism and `--seed S`.
//!
//! All of them are thin wrappers over the [`figures`] registry, which
//! expresses every artefact as data — serialisable
//! [`dragonfly_sim::spec::SweepSpec`] / [`dragonfly_sim::spec::ExperimentSpec`]
//! values — plus shared rendering. The `qadaptive-cli figure` subcommand
//! drives the same registry and can export CSV/JSON.

pub mod cache;
pub mod figures;
pub mod harness;
pub mod smoke;

pub use cache::{run_sweep_cached, ResultCache};
pub use figures::{run_figure, FigurePlan, FigureResult};
pub use harness::{BenchArgs, RunMode};
pub use smoke::{check_against_baseline, run_smoke, run_smoke_sharded, SmokeBench};
