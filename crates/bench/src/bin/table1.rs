//! Reproduces **Table 1** of the paper: the two Dragonfly configurations
//! and their derived parameters.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin table1
//! ```

use dragonfly_bench::harness::markdown_table;
use dragonfly_topology::config::DragonflyConfig;

fn main() {
    let systems = [
        ("1,056-node", DragonflyConfig::paper_1056()),
        ("2,550-node", DragonflyConfig::paper_2550()),
    ];

    let rows: Vec<Vec<String>> = [
        ("N (nodes)", systems.map(|(_, c)| c.nodes().to_string())),
        ("p (nodes per router)", systems.map(|(_, c)| c.p.to_string())),
        ("a (routers per group)", systems.map(|(_, c)| c.a.to_string())),
        ("h (global links per router)", systems.map(|(_, c)| c.h.to_string())),
        ("k = p+h+a-1 (ports per router)", systems.map(|(_, c)| c.radix().to_string())),
        ("g = a*h+1 (groups)", systems.map(|(_, c)| c.groups().to_string())),
        ("m = g*a (routers)", systems.map(|(_, c)| c.routers().to_string())),
        ("balanced (a = 2p = 2h)", systems.map(|(_, c)| c.is_balanced().to_string())),
        ("global links (total)", systems.map(|(_, c)| c.global_links().to_string())),
        ("local links (total)", systems.map(|(_, c)| c.local_links().to_string())),
    ]
    .into_iter()
    .map(|(name, vals)| {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        row
    })
    .collect();

    println!("Table 1: Dragonfly configurations\n");
    println!(
        "{}",
        markdown_table(&["parameter", systems[0].0, systems[1].0], &rows)
    );
    println!(
        "\nPaper values: 1,056-node (p=4, a=8, h=4, k=15, g=33, m=264) and \
         2,550-node (p=5, a=10, h=5, k=19, g=51, m=510)."
    );
}
