//! Reproduces **Table 1** of the paper: the two Dragonfly configurations
//! and their derived parameters.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin table1
//! ```
//!
//! The table is computed by [`dragonfly_bench::figures`]; the same output
//! (with CSV export) is available via `qadaptive-cli figure table1`.

fn main() {
    dragonfly_bench::figures::main_for("table1");
}
