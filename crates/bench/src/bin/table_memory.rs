//! Reproduces the **router-memory claim of Section 4**: the two-level
//! Q-table needs half the memory of the original Q-routing table on a
//! balanced Dragonfly.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin table_memory
//! ```

use dragonfly_bench::harness::markdown_table;
use dragonfly_topology::config::DragonflyConfig;
use qadaptive_core::table::QValueTable;
use qadaptive_core::{QTable, TwoLevelQTable};

fn main() {
    let systems = [
        ("1,056-node", DragonflyConfig::paper_1056()),
        ("2,550-node", DragonflyConfig::paper_2550()),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in systems {
        let original = QTable::new(cfg.routers(), cfg.fabric_ports(), 0.0);
        let two_level = TwoLevelQTable::new(cfg.groups(), cfg.p, cfg.fabric_ports(), 0.0);
        rows.push(vec![
            name.to_string(),
            format!("{} x {}", original.rows(), original.columns()),
            format!("{}", original.memory_bytes()),
            format!("{} x {}", two_level.rows(), two_level.columns()),
            format!("{}", two_level.memory_bytes()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - two_level.memory_bytes() as f64 / original.memory_bytes() as f64)
            ),
        ]);
    }

    println!("Per-router Q-table memory (Section 4 claim: the two-level table saves 50%)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "system",
                "Q-routing table (rows x cols)",
                "bytes",
                "two-level table (rows x cols)",
                "bytes",
                "savings"
            ],
            &rows
        )
    );
}
