//! Reproduces the **router-memory claim of Section 4**: the two-level
//! Q-table needs half the memory of the original Q-routing table on a
//! balanced Dragonfly.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin table_memory
//! ```
//!
//! The table is computed by [`dragonfly_bench::figures`]; the same output
//! (with CSV export) is available via `qadaptive-cli figure memory`.

fn main() {
    dragonfly_bench::figures::main_for("memory");
}
