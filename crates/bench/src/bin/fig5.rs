//! Reproduces **Figure 5**: packet latency, system throughput and hop count
//! versus offered load on the 1,056-node Dragonfly under UR, ADV+1 and
//! ADV+4, for MIN, VALn, UGALg, UGALn, PAR and Q-adaptive.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig5 -- [--quick|--full] [--threads N]
//! ```
//!
//! The experiment grids live in [`dragonfly_bench::figures`]; the same runs
//! are available (with CSV/JSON export) via `qadaptive-cli figure 5`.

fn main() {
    dragonfly_bench::figures::main_for("fig5");
}
