//! Reproduces **Figure 5**: packet latency, system throughput and hop count
//! versus offered load on the 1,056-node Dragonfly under UR, ADV+1 and
//! ADV+4, for MIN, VALn, UGALg, UGALn, PAR and Q-adaptive.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig5 -- [--quick|--full] [--threads N]
//! ```

use dragonfly_bench::harness::{markdown_table, BenchArgs};
use dragonfly_sim::sweep::LoadSweep;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;

fn main() {
    let args = BenchArgs::from_env();
    println!("{}", args.banner("Figure 5: 1,056-node Dragonfly, load sweeps"));

    let patterns = [
        (TrafficSpec::UniformRandom, args.ur_loads(), "Figure 5(a-c)"),
        (
            TrafficSpec::Adversarial { shift: 1 },
            args.adv_loads(),
            "Figure 5(d-f)",
        ),
        (
            TrafficSpec::Adversarial { shift: 4 },
            args.adv_loads(),
            "Figure 5(g-i)",
        ),
    ];

    for (traffic, loads, figure) in patterns {
        let sweep = LoadSweep {
            topology: DragonflyConfig::paper_1056(),
            traffic,
            routings: dragonfly_routing::RoutingSpec::paper_lineup(),
            loads: loads.clone(),
            warmup_ns: args.warmup_ns(),
            measure_ns: args.measure_ns(),
            seed: args.seed,
        };
        println!(
            "\n{} — {} ({} points)...",
            figure,
            traffic.label(),
            sweep.len()
        );
        let result = sweep.run_parallel(args.threads);

        let mut rows = Vec::new();
        for report in &result.reports {
            rows.push(vec![
                report.routing.clone(),
                format!("{:.2}", report.offered_load),
                format!("{:.3}", report.throughput),
                format!("{:.2}", report.mean_latency_us),
                format!("{:.2}", report.p99_latency_us),
                format!("{:.2}", report.mean_hops),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "routing",
                    "offered load",
                    "throughput",
                    "mean latency (us)",
                    "p99 latency (us)",
                    "mean hops"
                ],
                &rows
            )
        );

        // Paper-shape summary: saturation throughput per algorithm.
        let mut summary = Vec::new();
        for spec in dragonfly_routing::RoutingSpec::paper_lineup() {
            let label = spec.label();
            summary.push(vec![
                label.clone(),
                format!("{:.3}", result.saturation_throughput(&label)),
            ]);
        }
        println!("\nSaturation throughput ({}):", traffic.label());
        println!(
            "{}",
            markdown_table(&["routing", "max throughput"], &summary)
        );
    }
    println!(
        "\nPaper reference points: UR max load — Q-adaptive 88.25% throughput \
         (+6.6%/+10.5%/+8.3% vs UGALg/UGALn/PAR, −3.3% vs MIN); \
         ADV+1 — Q-adaptive 48.2% (beats VALn by 3%); ADV+4 — Q-adaptive 44.9% \
         (1.7% below VALn), mean hops 4.27 at load 0.5 vs 3.06 under ADV+1."
    );
}
