//! Reproduces **Figure 9**: the 2,550-node scale-up case study — packet
//! latency distributions under UR, ADV+1, 3D Stencil, Many-to-Many and
//! Random Neighbors for all six routing algorithms, with the 2,550-node
//! Q-adaptive hyper-parameters (q_thld1 = 0.05, q_thld2 = 0.4).
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig9 -- [--quick|--full] [--threads N]
//! ```

use dragonfly_bench::harness::{markdown_table, BenchArgs, RunMode};
use dragonfly_sim::sweep::LoadSweep;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;

fn main() {
    let args = BenchArgs::from_env();
    println!("{}", args.banner("Figure 9: 2,550-node Dragonfly case study"));

    // The paper plots latency distributions at a fixed operating point per
    // pattern; we use a moderate load for the HPC patterns and the Figure 6
    // loads for UR / ADV+1.
    let load_for = |spec: &TrafficSpec| match spec {
        TrafficSpec::UniformRandom => 0.8,
        TrafficSpec::Adversarial { .. } => 0.45,
        _ => 0.5,
    };
    // The 2,550-node system is ~2.4x larger; quick mode trims the windows.
    let (warmup_ns, measure_ns) = match args.mode {
        RunMode::Quick => (60_000u64, 30_000u64),
        RunMode::Full => (args.warmup_ns(), args.measure_ns()),
    };

    for traffic in TrafficSpec::paper_case_study() {
        let sweep = LoadSweep {
            topology: DragonflyConfig::paper_2550(),
            traffic,
            routings: dragonfly_routing::RoutingSpec::paper_lineup_2550(),
            loads: vec![load_for(&traffic)],
            warmup_ns,
            measure_ns,
            seed: args.seed,
        };
        println!(
            "\nFigure 9 — {} @ load {:.2} ({} simulations)...",
            traffic.label(),
            load_for(&traffic),
            sweep.len()
        );
        let result = sweep.run_parallel(args.threads);

        let mut rows = Vec::new();
        for r in &result.reports {
            rows.push(vec![
                r.routing.clone(),
                format!("{:.2}", r.mean_latency_us),
                format!("{:.2}", r.median_latency_us),
                format!("{:.2}", r.p95_latency_us),
                format!("{:.2}", r.p99_latency_us),
                format!("{:.3}", r.throughput),
                format!("{:.2}", r.mean_hops),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "routing",
                    "mean (us)",
                    "median (us)",
                    "p95 (us)",
                    "p99 (us)",
                    "throughput",
                    "hops"
                ],
                &rows
            )
        );
    }
    println!(
        "\nPaper reference points: UR — Q-adaptive mean 0.84 us / p99 1.67 us (near the \
         MIN optimum); ADV+1 — mean 0.96 us, beating VALn (1.75 us); 3D Stencil — mean \
         0.62 us (1.77x below UGALg); Many-to-Many — mean 1.15 us; Random Neighbors — \
         near-optimal 1.04 us vs MIN 1.01 us."
    );
}
