//! Reproduces **Figure 9**: the 2,550-node scale-up case study — packet
//! latency distributions under UR, ADV+1, 3D Stencil, Many-to-Many and
//! Random Neighbors for all six routing algorithms, with the 2,550-node
//! Q-adaptive hyper-parameters (q_thld1 = 0.05, q_thld2 = 0.4).
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig9 -- [--quick|--full] [--threads N]
//! ```
//!
//! The experiment grids live in [`dragonfly_bench::figures`]; the same runs
//! are available (with CSV/JSON export) via `qadaptive-cli figure 9`.

fn main() {
    dragonfly_bench::figures::main_for("fig9");
}
