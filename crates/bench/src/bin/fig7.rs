//! Reproduces **Figure 7**: convergence of Q-adaptive from an empty
//! network — average packet latency over time under UR (loads 0.4 / 0.8)
//! and ADV+1 / ADV+4 (loads 0.2 / 0.4).
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig7 -- [--quick|--full]
//! ```

use dragonfly_bench::harness::{markdown_table, BenchArgs, RunMode};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::convergence::run_convergence;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

fn main() {
    let args = BenchArgs::from_env();
    println!("{}", args.banner("Figure 7: Q-adaptive convergence from an empty network"));

    // The paper simulates ~750 us; quick mode uses 300 us which is enough to
    // see the latency surge and the settling.
    let (duration_ns, bin_ns) = match args.mode {
        RunMode::Quick => (300_000u64, 10_000u64),
        RunMode::Full => (750_000, 10_000),
    };

    let scenarios = [
        ("Fig 7(a) UR load 0.4", TrafficSpec::UniformRandom, 0.4),
        ("Fig 7(a) UR load 0.8", TrafficSpec::UniformRandom, 0.8),
        ("Fig 7(b) ADV+1 load 0.2", TrafficSpec::Adversarial { shift: 1 }, 0.2),
        ("Fig 7(b) ADV+4 load 0.2", TrafficSpec::Adversarial { shift: 4 }, 0.2),
        ("Fig 7(b) ADV+1 load 0.4", TrafficSpec::Adversarial { shift: 1 }, 0.4),
        ("Fig 7(b) ADV+4 load 0.4", TrafficSpec::Adversarial { shift: 4 }, 0.4),
    ];

    for (title, traffic, load) in scenarios {
        println!("\n{title} (simulating {} us)...", duration_ns / 1_000);
        let result = run_convergence(
            DragonflyConfig::paper_1056(),
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            traffic,
            LoadSchedule::constant(load),
            duration_ns,
            bin_ns,
            100_000.min(duration_ns / 3),
            args.seed,
        );
        // Print the latency curve at a 30 us granularity to keep the table
        // readable (the full series is available programmatically).
        let curve = result.latency_curve();
        let rows: Vec<Vec<String>> = curve
            .iter()
            .step_by(3)
            .map(|(t, lat)| vec![format!("{t:.0}"), format!("{lat:.2}")])
            .collect();
        println!(
            "{}",
            markdown_table(&["time (us)", "mean latency (us)"], &rows)
        );
        match result.convergence_us {
            Some(t) => println!("converged after ~{t:.0} us (paper: within 500 us)"),
            None => println!("not yet settled within the simulated window"),
        }
        println!("converged-window summary: {}", result.report.summary());
    }
}
