//! Reproduces **Figure 7**: convergence of Q-adaptive from an empty
//! network — average packet latency over time under UR (loads 0.4 / 0.8)
//! and ADV+1 / ADV+4 (loads 0.2 / 0.4).
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig7 -- [--quick|--full]
//! ```
//!
//! The runs live in [`dragonfly_bench::figures`]; the same study is
//! available (with CSV/JSON export) via `qadaptive-cli figure 7`.

fn main() {
    dragonfly_bench::figures::main_for("fig7");
}
