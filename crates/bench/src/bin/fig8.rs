//! Reproduces **Figure 8**: Q-adaptive under time-varying offered loads —
//! system throughput over time when the load steps up or down mid-run
//! (UR 0.4↔0.8 and ADV+4 0.2↔0.4).
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig8 -- [--quick|--full]
//! ```
//!
//! The runs live in [`dragonfly_bench::figures`]; the same study is
//! available (with CSV/JSON export) via `qadaptive-cli figure 8`.

fn main() {
    dragonfly_bench::figures::main_for("fig8");
}
