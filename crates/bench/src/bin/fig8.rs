//! Reproduces **Figure 8**: Q-adaptive under time-varying offered loads —
//! system throughput over time when the load steps up or down mid-run
//! (UR 0.4↔0.8 and ADV+4 0.2↔0.4).
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig8 -- [--quick|--full]
//! ```

use dragonfly_bench::harness::{markdown_table, BenchArgs, RunMode};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::convergence::run_convergence;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

fn main() {
    let args = BenchArgs::from_env();
    println!("{}", args.banner("Figure 8: Q-adaptive under varying offered loads"));

    // The paper switches the UR load at 1600 us (up) / 1280 us (down) and the
    // ADV+4 load at 3215 us / 2610 us into multi-millisecond runs. Quick mode
    // compresses the timeline while keeping the step shape.
    let scale = match args.mode {
        RunMode::Quick => 1u64,
        RunMode::Full => 4,
    };
    let bin_ns = 20_000u64;

    let scenarios = [
        (
            "Fig 8(a) UR 0.4 -> 0.8",
            TrafficSpec::UniformRandom,
            LoadSchedule::step(0.4, 0.8, 200_000 * scale),
            400_000 * scale,
        ),
        (
            "Fig 8(a) UR 0.8 -> 0.4",
            TrafficSpec::UniformRandom,
            LoadSchedule::step(0.8, 0.4, 200_000 * scale),
            400_000 * scale,
        ),
        (
            "Fig 8(b) ADV+4 0.2 -> 0.4",
            TrafficSpec::Adversarial { shift: 4 },
            LoadSchedule::step(0.2, 0.4, 300_000 * scale),
            600_000 * scale,
        ),
        (
            "Fig 8(b) ADV+4 0.4 -> 0.2",
            TrafficSpec::Adversarial { shift: 4 },
            LoadSchedule::step(0.4, 0.2, 300_000 * scale),
            600_000 * scale,
        ),
    ];

    for (title, traffic, schedule, duration_ns) in scenarios {
        println!("\n{title} (simulating {} us)...", duration_ns / 1_000);
        let result = run_convergence(
            DragonflyConfig::paper_1056(),
            RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
            traffic,
            schedule,
            duration_ns,
            bin_ns,
            100_000,
            args.seed,
        );
        let curve = result.throughput_curve();
        let rows: Vec<Vec<String>> = curve
            .iter()
            .step_by(2)
            .map(|(t, tp)| vec![format!("{t:.0}"), format!("{tp:.3}")])
            .collect();
        println!(
            "{}",
            markdown_table(&["time (us)", "system throughput"], &rows)
        );
        println!("final-window summary: {}", result.report.summary());
    }
    println!(
        "\nPaper reference points: after the UR 0.4->0.8 step Q-adaptive re-converges \
         in ~156 us (faster than the 200 us cold start); load decreases are followed \
         almost instantly; ADV+4 steps take ~440-455 us."
    );
}
