//! Reproduces **Figure 6**: the packet-latency distribution (quartiles,
//! mean, p95, p99) on the 1,056-node Dragonfly at the loads the paper
//! highlights — UR at 0.8, ADV+1 and ADV+4 at 0.45.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig6 -- [--quick|--full] [--threads N]
//! ```
//!
//! The experiment grids live in [`dragonfly_bench::figures`]; the same runs
//! are available (with CSV/JSON export) via `qadaptive-cli figure 6`.

fn main() {
    dragonfly_bench::figures::main_for("fig6");
}
