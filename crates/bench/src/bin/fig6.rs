//! Reproduces **Figure 6**: the packet-latency distribution (quartiles,
//! mean, p95, p99) on the 1,056-node Dragonfly at the loads the paper
//! highlights — UR at 0.8, ADV+1 and ADV+4 at 0.45.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin fig6 -- [--quick|--full] [--threads N]
//! ```

use dragonfly_bench::harness::{markdown_table, BenchArgs};
use dragonfly_sim::sweep::LoadSweep;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;

fn main() {
    let args = BenchArgs::from_env();
    println!(
        "{}",
        args.banner("Figure 6: latency distribution on the 1,056-node Dragonfly")
    );

    let scenarios = [
        (TrafficSpec::UniformRandom, 0.8, "Figure 6(a) UR @ 0.8"),
        (
            TrafficSpec::Adversarial { shift: 1 },
            0.45,
            "Figure 6(b) ADV+1 @ 0.45",
        ),
        (
            TrafficSpec::Adversarial { shift: 4 },
            0.45,
            "Figure 6(c) ADV+4 @ 0.45",
        ),
    ];

    for (traffic, load, title) in scenarios {
        let sweep = LoadSweep {
            topology: DragonflyConfig::paper_1056(),
            traffic,
            routings: dragonfly_routing::RoutingSpec::paper_lineup(),
            loads: vec![load],
            warmup_ns: args.warmup_ns(),
            measure_ns: args.measure_ns(),
            seed: args.seed,
        };
        println!("\n{title} ({} simulations)...", sweep.len());
        let result = sweep.run_parallel(args.threads);

        let mut rows = Vec::new();
        for r in &result.reports {
            rows.push(vec![
                r.routing.clone(),
                format!("{:.2}", r.q1_latency_us),
                format!("{:.2}", r.median_latency_us),
                format!("{:.2}", r.q3_latency_us),
                format!("{:.2}", r.mean_latency_us),
                format!("{:.2}", r.p95_latency_us),
                format!("{:.2}", r.p99_latency_us),
                format!("{:.1}%", 100.0 * r.fraction_below_2us),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "routing",
                    "Q1 (us)",
                    "median (us)",
                    "Q3 (us)",
                    "mean (us)",
                    "p95 (us)",
                    "p99 (us)",
                    "< 2 us"
                ],
                &rows
            )
        );
    }
    println!(
        "\nPaper reference points: UR — Q-adaptive p99 = 1.42 us (5.9x / 3.8x / 18.2x \
         below UGALg / UGALn / PAR); ADV+1 — Q-adaptive p99 = 5.10 us; ADV+4 — \
         Q-adaptive p99 = 8.08 us and 81% of packets under 2 us vs 64% for PAR."
    );
}
