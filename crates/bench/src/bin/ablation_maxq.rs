//! Reproduces the **Section 2.3.2 study**: why naive Q-routing with a maxQ
//! hop threshold cannot serve both uniform and adversarial traffic — UR
//! wants a small maxQ (stay minimal), ADV+i wants a large one (escape the
//! saturated global link), and no single value handles ADV+4's local-link
//! congestion.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin ablation_maxq -- [--quick|--full] [--threads N]
//! ```

use dragonfly_bench::harness::{markdown_table, BenchArgs};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::sweep::LoadSweep;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

fn main() {
    let args = BenchArgs::from_env();
    println!(
        "{}",
        args.banner("Section 2.3.2 ablation: Q-routing maxQ threshold")
    );

    let routings: Vec<RoutingSpec> = vec![
        RoutingSpec::QRouting { max_q: 0 },
        RoutingSpec::QRouting { max_q: 1 },
        RoutingSpec::QRouting { max_q: 2 },
        RoutingSpec::QRouting { max_q: 4 },
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
    ];

    let scenarios = [
        (TrafficSpec::UniformRandom, 0.8),
        (TrafficSpec::Adversarial { shift: 1 }, 0.4),
        (TrafficSpec::Adversarial { shift: 4 }, 0.4),
    ];

    for (traffic, load) in scenarios {
        let sweep = LoadSweep {
            topology: DragonflyConfig::paper_1056(),
            traffic,
            routings: routings.clone(),
            loads: vec![load],
            warmup_ns: args.warmup_ns(),
            measure_ns: args.measure_ns(),
            seed: args.seed,
        };
        println!("\n{} @ load {:.2} ({} simulations)...", traffic.label(), load, sweep.len());
        let result = sweep.run_parallel(args.threads);
        let mut rows = Vec::new();
        for r in &result.reports {
            rows.push(vec![
                r.routing.clone(),
                format!("{:.3}", r.throughput),
                format!("{:.2}", r.mean_latency_us),
                format!("{:.2}", r.mean_hops),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &["routing", "throughput", "mean latency (us)", "mean hops"],
                &rows
            )
        );
    }
    println!(
        "\nExpected shape (paper): small maxQ is best under UR and poor under ADV+i; \
         larger maxQ helps ADV+1 but never fixes ADV+4 (local-link congestion); \
         Q-adaptive handles all three with one configuration."
    );
}
