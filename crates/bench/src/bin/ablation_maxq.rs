//! Reproduces the **Section 2.3.2 study**: why naive Q-routing with a maxQ
//! hop threshold cannot serve both uniform and adversarial traffic — UR
//! wants a small maxQ (stay minimal), ADV+i wants a large one (escape the
//! saturated global link), and no single value handles ADV+4's local-link
//! congestion.
//!
//! ```text
//! cargo run --release -p dragonfly-bench --bin ablation_maxq -- [--quick|--full] [--threads N]
//! ```
//!
//! The experiment grids live in [`dragonfly_bench::figures`]; the same runs
//! are available (with CSV/JSON export) via `qadaptive-cli figure maxq`.

fn main() {
    dragonfly_bench::figures::main_for("maxq");
}
