//! Criterion benchmarks mirroring the paper's figure workloads in
//! miniature: one bench per table/figure, running a scaled-down version of
//! the corresponding experiment on the tiny system so that `cargo bench`
//! exercises every experiment path quickly and tracks performance
//! regressions of the full harness.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_sim::convergence::run_convergence;
use dragonfly_sim::sweep::LoadSweep;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::schedule::LoadSchedule;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

/// Figure 5 in miniature: a two-load sweep of the full algorithm lineup
/// under each traffic pattern.
fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig5_sweep");
    group.sample_size(10);
    for traffic in [
        TrafficSpec::UniformRandom,
        TrafficSpec::Adversarial { shift: 1 },
        TrafficSpec::Adversarial { shift: 4 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(traffic.label()),
            &traffic,
            |b, traffic| {
                b.iter(|| {
                    let sweep = LoadSweep {
                        topology: DragonflyConfig::tiny(),
                        traffic: *traffic,
                        routings: RoutingSpec::paper_lineup(),
                        loads: vec![0.2, 0.4],
                        warmup_ns: 5_000,
                        measure_ns: 10_000,
                        seed: 1,
                    };
                    black_box(sweep.run_parallel(0).reports.len())
                })
            },
        );
    }
    group.finish();
}

/// Figure 6 in miniature: tail-latency measurement of the lineup at one
/// operating point.
fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig6_tail_latency");
    group.sample_size(10);
    group.bench_function("adv1_0.35", |b| {
        b.iter(|| {
            let sweep = LoadSweep {
                topology: DragonflyConfig::tiny(),
                traffic: TrafficSpec::Adversarial { shift: 1 },
                routings: RoutingSpec::paper_lineup(),
                loads: vec![0.35],
                warmup_ns: 10_000,
                measure_ns: 10_000,
                seed: 2,
            };
            let result = sweep.run_parallel(0);
            black_box(result.reports.iter().map(|r| r.p99_latency_us).sum::<f64>())
        })
    });
    group.finish();
}

/// Figures 7 and 8 in miniature: convergence and a load step with a time
/// series.
fn bench_fig7_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig7_fig8_timeseries");
    group.sample_size(10);
    group.bench_function("fig7_convergence", |b| {
        b.iter(|| {
            let result = run_convergence(
                DragonflyConfig::tiny(),
                RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                TrafficSpec::Adversarial { shift: 1 },
                LoadSchedule::constant(0.3),
                60_000,
                10_000,
                20_000,
                3,
            );
            black_box(result.latency_curve().len())
        })
    });
    group.bench_function("fig8_load_step", |b| {
        b.iter(|| {
            let result = run_convergence(
                DragonflyConfig::tiny(),
                RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
                TrafficSpec::UniformRandom,
                LoadSchedule::step(0.2, 0.5, 30_000),
                60_000,
                10_000,
                20_000,
                3,
            );
            black_box(result.throughput_curve().len())
        })
    });
    group.finish();
}

/// Figure 9 in miniature: the five case-study patterns with the 2,550-node
/// hyper-parameters (on the tiny topology).
fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig9_case_study");
    group.sample_size(10);
    for traffic in TrafficSpec::paper_case_study() {
        group.bench_with_input(
            BenchmarkId::from_parameter(traffic.label()),
            &traffic,
            |b, traffic| {
                b.iter(|| {
                    let report = SimulationBuilder::new(DragonflyConfig::tiny())
                        .routing(RoutingSpec::QAdaptive(QAdaptiveParams::paper_2550()))
                        .traffic(*traffic)
                        .offered_load(0.3)
                        .warmup_ns(10_000)
                        .measure_ns(10_000)
                        .seed(4)
                        .run();
                    black_box(report.mean_latency_us)
                })
            },
        );
    }
    group.finish();
}

/// Table 1 / memory table in miniature: topology construction and Q-table
/// initialisation for both paper systems.
fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/table1_table_memory");
    for (name, cfg) in [
        ("1056", DragonflyConfig::paper_1056()),
        ("2550", DragonflyConfig::paper_2550()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let topo =
                    dragonfly_topology::AnyTopology::from(dragonfly_topology::Dragonfly::new(*cfg));
                let ecfg = dragonfly_engine::config::EngineConfig::paper(5);
                let table = qadaptive_core::init::init_two_level_table(
                    &topo,
                    &ecfg,
                    dragonfly_topology::ids::RouterId(0),
                );
                black_box(qadaptive_core::table::QValueTable::memory_bytes(&table))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig6,
    bench_fig7_fig8,
    bench_fig9,
    bench_tables
);
criterion_main!(benches);
