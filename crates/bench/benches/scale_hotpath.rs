//! Criterion benchmarks of the three scale-path hot spots this repo
//! optimises: paged-vs-dense Q-table access (the per-decision routing
//! cost at 100k-node scale), content-derived event-key computation (paid
//! once per scheduled event), and the binary-vs-JSON snapshot codec
//! (paid once per checkpoint interval on a multi-gigabyte state).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dragonfly_engine::event::{event_key, EventKind};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::checkpoint::RunCheckpoint;
use dragonfly_sim::spec::ExperimentSpec;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::{NodeId, Port, RouterId};
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::paged::{InitFn, PagedQTable};
use qadaptive_core::table::QValueTable;
use qadaptive_core::QTable;
use std::sync::Arc;

// A scale-representative table shape: the two-level rows (g·p) of one
// router in a system two orders of magnitude past the paper's 1,056
// nodes, with a realistic fabric radix for the columns.
const ROWS: usize = 26_048;
const COLS: usize = 36;

fn init_fn() -> InitFn {
    Arc::new(|row, col| ((row * 31 + col * 17) % 97) as f64 + 1.0)
}

/// A paged table with a realistically sparse write set (a few hundred
/// destinations actually learned, the rest untouched), and its dense twin.
fn tables() -> (PagedQTable, QTable) {
    let f = init_fn();
    let mut paged = PagedQTable::new(ROWS, COLS, f.clone());
    let dense = QTable::from_fn(ROWS, COLS, |r, c| f(r.index(), c));
    let mut x = 9u64;
    for _ in 0..400 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        paged.set((x >> 33) as usize % ROWS, (x >> 17) as usize % COLS, 0.5);
    }
    (paged, dense)
}

fn bench_paged_vs_dense(c: &mut Criterion) {
    let (paged, dense) = tables();
    let mut group = c.benchmark_group("paged/best_in_row");
    group.bench_function("dense_26kx36", |b| {
        let mut row = 0usize;
        b.iter(|| {
            row = (row + 1) % ROWS;
            black_box(dense.best_in_row(black_box(row)))
        })
    });
    // Random rows: mostly untouched, answered from the init-row cache.
    group.bench_function("paged_26kx36_sparse", |b| {
        let mut row = 0usize;
        b.iter(|| {
            row = (row + 1) % ROWS;
            black_box(paged.best_in_row(black_box(row)))
        })
    });
    // The routing-decision access burst on one untouched row: a
    // `best_in_row` followed by a `get` per column (near-tie detection).
    // This is the pattern the init-row cache exists for.
    group.bench_function("paged_decision_burst_untouched_row", |b| {
        let mut row = 1usize;
        b.iter(|| {
            row = (row + 2) % ROWS;
            let (best, _) = paged.best_in_row(black_box(row));
            let mut acc = 0.0;
            for c in 0..COLS {
                acc += paged.get(row, c);
            }
            black_box((best, acc))
        })
    });
    group.finish();
}

fn bench_event_key(c: &mut Criterion) {
    let kinds = [
        EventKind::NicCredit {
            node: NodeId(7_321),
        },
        EventKind::SwitchAttempt {
            router: RouterId(4_401),
            port: Port(17),
            vc: 2,
        },
        EventKind::CreditArrive {
            router: RouterId(900),
            port: Port(3),
            vc: 1,
        },
        EventKind::TaskRecv {
            node: NodeId(12),
            src: NodeId(55_000),
        },
    ];
    c.bench_function("event/key_computation", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % kinds.len();
            black_box(event_key(black_box(&kinds[i])))
        })
    });
}

/// A real (small) run checkpoint with learned Q-state, so the codec sees
/// the same shape — float-heavy `q_values`, varint-friendly counters —
/// the 110k-node snapshot has, at a size criterion can iterate on.
fn sample_checkpoint() -> RunCheckpoint {
    let spec = ExperimentSpec {
        name: "bench-snapshot-codec".to_string(),
        topology: DragonflyConfig::paper_1056().into(),
        routing: RoutingSpec::QAdaptive(Default::default()),
        traffic: TrafficSpec::UniformRandom,
        workload: None,
        load: Some(0.3),
        schedule: None,
        warmup_ns: 0,
        measure_ns: 30_000,
        tail_ns: 0,
        seed: Some(5),
        series_bin_ns: None,
        engine: None,
        faults: vec![],
        metrics: None,
    };
    let mut last = None;
    spec.run_checkpointed(None, Some(15_000), |ck| last = Some(ck))
        .expect("the sample run succeeds");
    last.expect("the run produced at least one checkpoint")
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let ck = sample_checkpoint();
    let json = ck.to_json();
    let binary = ck.to_binary();
    let mut group = c.benchmark_group("snapshot/codec");
    group.sample_size(20);
    group.bench_function("encode_json", |b| b.iter(|| black_box(ck.to_json())));
    group.bench_function("encode_binary", |b| b.iter(|| black_box(ck.to_binary())));
    group.bench_function("decode_json", |b| {
        b.iter(|| black_box(RunCheckpoint::from_json(black_box(&json)).unwrap()))
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| black_box(RunCheckpoint::from_binary(black_box(&binary)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paged_vs_dense,
    bench_event_key,
    bench_snapshot_codec
);
criterion_main!(benches);
