//! Criterion benchmark of raw simulator throughput: simulated events per
//! second for a short uniform-random run on the 1,056-node system under
//! minimal routing (the cheapest agent, so this measures the engine itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/simulated_events");
    group.sample_size(10);
    group.bench_function("min_ur_0.3_10us_1056", |b| {
        b.iter(|| {
            let report = SimulationBuilder::new(DragonflyConfig::paper_1056())
                .routing(RoutingSpec::Minimal)
                .traffic(TrafficSpec::UniformRandom)
                .offered_load(0.3)
                .warmup_ns(0)
                .measure_ns(10_000)
                .seed(1)
                .run();
            black_box(report.events_processed)
        })
    });
    group.bench_function("qadp_ur_0.3_10us_tiny", |b| {
        b.iter(|| {
            let report = SimulationBuilder::new(DragonflyConfig::tiny())
                .routing(RoutingSpec::QAdaptive(Default::default()))
                .traffic(TrafficSpec::UniformRandom)
                .offered_load(0.3)
                .warmup_ns(0)
                .measure_ns(10_000)
                .seed(1)
                .run();
            black_box(report.events_processed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
