//! Criterion benchmark of raw simulator throughput: simulated events per
//! second for a short uniform-random run on the 1,056-node system under
//! minimal routing (the cheapest agent, so this measures the engine
//! itself), with an A/B comparison of the two event schedulers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dragonfly_bench::smoke::{smoke_workload, QUICK_MEASURE_NS};
use dragonfly_engine::config::SchedulerKind;
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;

fn run_1056(scheduler: SchedulerKind, measure_ns: u64) -> u64 {
    // The same canonical workload the `qadaptive-cli bench` smoke
    // benchmark measures, so criterion numbers and BENCH_PR2.json agree.
    smoke_workload(scheduler, measure_ns, 1)
        .run()
        .events_processed
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/simulated_events");
    group.sample_size(10);
    // The scheduler A/B pair: identical workload and (deterministically)
    // identical event order, so the wall-clock difference is purely the
    // calendar queue vs the binary heap.
    group.bench_function("min_ur_0.3_10us_1056_calendar", |b| {
        b.iter(|| black_box(run_1056(SchedulerKind::Calendar, QUICK_MEASURE_NS)))
    });
    group.bench_function("min_ur_0.3_10us_1056_heap", |b| {
        b.iter(|| black_box(run_1056(SchedulerKind::BinaryHeap, QUICK_MEASURE_NS)))
    });
    group.bench_function("qadp_ur_0.3_10us_tiny", |b| {
        b.iter(|| {
            let report = SimulationBuilder::new(DragonflyConfig::tiny())
                .routing(RoutingSpec::QAdaptive(Default::default()))
                .traffic(TrafficSpec::UniformRandom)
                .offered_load(0.3)
                .warmup_ns(0)
                .measure_ns(10_000)
                .seed(1)
                .run();
            black_box(report.events_processed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
