//! Criterion benchmarks of the Q-table data structures: lookup, best-in-row
//! and hysteretic update throughput for both the original and the two-level
//! table (the per-packet computational cost the paper argues is small
//! enough for router hardware).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::GroupId;
use qadaptive_core::hysteretic::HystereticLearner;
use qadaptive_core::table::QValueTable;
use qadaptive_core::{QTable, TwoLevelQTable};

fn tables() -> (QTable, TwoLevelQTable) {
    let cfg = DragonflyConfig::paper_1056();
    (
        QTable::new(cfg.routers(), cfg.fabric_ports(), 700.0),
        TwoLevelQTable::new(cfg.groups(), cfg.p, cfg.fabric_ports(), 700.0),
    )
}

fn bench_best_in_row(c: &mut Criterion) {
    let (original, two_level) = tables();
    let mut group = c.benchmark_group("qtable/best_in_row");
    group.bench_function("original_mx11", |b| {
        let mut row = 0usize;
        b.iter(|| {
            row = (row + 1) % original.rows();
            black_box(original.best_in_row(black_box(row)))
        })
    });
    group.bench_function("two_level_gp_x11", |b| {
        let mut row = 0usize;
        b.iter(|| {
            row = (row + 1) % two_level.rows();
            black_box(two_level.best_in_row(black_box(row)))
        })
    });
    group.finish();
}

fn bench_hysteretic_update(c: &mut Criterion) {
    let (_, mut two_level) = tables();
    let learner = HystereticLearner::new(0.2, 0.04);
    c.bench_function("qtable/hysteretic_update", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let row = i % two_level.rows();
            let col = i % two_level.columns();
            i += 1;
            let current = two_level.get(row, col);
            let updated = learner.update(current, black_box(450.0), black_box(900.0));
            two_level.set(row, col, updated);
            black_box(updated)
        })
    });
}

fn bench_row_addressing(c: &mut Criterion) {
    let (_, two_level) = tables();
    c.bench_function("qtable/two_level_row_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let group = GroupId(i % 33);
            let slot = (i % 4) as u8;
            i = i.wrapping_add(1);
            black_box(two_level.row(black_box(group), black_box(slot)))
        })
    });
}

criterion_group!(
    benches,
    bench_best_in_row,
    bench_hysteretic_update,
    bench_row_addressing
);
criterion_main!(benches);
