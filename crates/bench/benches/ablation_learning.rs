//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! hysteretic vs plain Q-learning, the minimal-bias thresholds, and the
//! ε-greedy exploration rate. Each variant runs the same adversarial
//! mini-workload; Criterion reports the wall time, and the measured
//! throughput is printed once per variant so the quality impact is visible
//! alongside the cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

fn run_variant(params: QAdaptiveParams) -> (u64, f64) {
    let report = SimulationBuilder::new(DragonflyConfig::tiny())
        .routing(RoutingSpec::QAdaptive(params))
        .traffic(TrafficSpec::Adversarial { shift: 1 })
        .offered_load(0.35)
        .warmup_ns(40_000)
        .measure_ns(20_000)
        .seed(11)
        .run();
    (report.packets_delivered, report.throughput)
}

fn bench_learning_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/learning_rule");
    group.sample_size(10);
    let variants = [
        ("hysteretic_paper", QAdaptiveParams::paper_1056()),
        ("plain_q_alpha0.2", QAdaptiveParams::plain_q_learning(0.2)),
        (
            "aggressive_beta",
            QAdaptiveParams {
                beta: 0.2,
                ..QAdaptiveParams::paper_1056()
            },
        ),
    ];
    for (name, params) in variants {
        let (_, tput) = run_variant(params);
        println!("ablation/learning_rule/{name}: throughput = {tput:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            b.iter(|| black_box(run_variant(*p).0))
        });
    }
    group.finish();
}

fn bench_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/minimal_bias_thresholds");
    group.sample_size(10);
    for thld in [0.0, 0.2, 0.5] {
        let params = QAdaptiveParams {
            q_thld1: thld,
            q_thld2: (thld + 0.15).min(1.0),
            ..QAdaptiveParams::paper_1056()
        };
        let (_, tput) = run_variant(params);
        println!("ablation/thresholds/q_thld1={thld}: throughput = {tput:.3}");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q_thld1_{thld}")),
            &params,
            |b, p| b.iter(|| black_box(run_variant(*p).0)),
        );
    }
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/epsilon");
    group.sample_size(10);
    for epsilon in [0.0, 0.001, 0.01] {
        let params = QAdaptiveParams {
            epsilon,
            ..QAdaptiveParams::paper_1056()
        };
        let (_, tput) = run_variant(params);
        println!("ablation/epsilon={epsilon}: throughput = {tput:.3}");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("epsilon_{epsilon}")),
            &params,
            |b, p| b.iter(|| black_box(run_variant(*p).0)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_learning_rule,
    bench_thresholds,
    bench_exploration
);
criterion_main!(benches);
