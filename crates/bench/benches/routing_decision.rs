//! Criterion benchmark of the per-packet routing-decision cost of each
//! algorithm, measured end-to-end as simulated-time-per-wall-time on a tiny
//! system (so the decision logic, not the topology size, dominates).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_routing::RoutingSpec;
use dragonfly_sim::builder::SimulationBuilder;
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_traffic::TrafficSpec;
use qadaptive_core::QAdaptiveParams;

fn bench_decision_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/decision_cost");
    group.sample_size(10);
    let algorithms = [
        RoutingSpec::Minimal,
        RoutingSpec::ValiantNode,
        RoutingSpec::UgalG,
        RoutingSpec::UgalN,
        RoutingSpec::Par,
        RoutingSpec::QRouting { max_q: 2 },
        RoutingSpec::QAdaptive(QAdaptiveParams::paper_1056()),
    ];
    for spec in algorithms {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.label()),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let report = SimulationBuilder::new(DragonflyConfig::tiny())
                        .routing(*spec)
                        .traffic(TrafficSpec::UniformRandom)
                        .offered_load(0.4)
                        .warmup_ns(0)
                        .measure_ns(20_000)
                        .seed(7)
                        .run();
                    black_box(report.packets_delivered)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decision_cost);
criterion_main!(benches);
