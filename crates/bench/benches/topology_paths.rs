//! Criterion micro-benchmarks for topology queries: minimal-port lookup,
//! full minimal-route enumeration, and gateway resolution on both paper
//! systems. These sit on the simulator's hottest path (one lookup per
//! routed packet per hop).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::RouterId;
use dragonfly_topology::Dragonfly;

fn bench_minimal_port(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/minimal_port");
    for (name, cfg) in [
        ("1056", DragonflyConfig::paper_1056()),
        ("2550", DragonflyConfig::paper_2550()),
    ] {
        let topo = Dragonfly::new(cfg);
        let m = topo.num_routers() as u32;
        group.bench_with_input(BenchmarkId::from_parameter(name), &topo, |b, topo| {
            let mut i = 0u32;
            b.iter(|| {
                let src = RouterId(i % m);
                let dst = RouterId((i.wrapping_mul(2654435761)) % m);
                i = i.wrapping_add(1);
                black_box(topo.minimal_port(black_box(src), black_box(dst)))
            })
        });
    }
    group.finish();
}

fn bench_minimal_route(c: &mut Criterion) {
    let topo = Dragonfly::new(DragonflyConfig::paper_1056());
    let m = topo.num_routers() as u32;
    c.bench_function("topology/minimal_route_1056", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = RouterId(i % m);
            let dst = RouterId((i.wrapping_mul(40503)) % m);
            i = i.wrapping_add(1);
            black_box(topo.minimal_route(black_box(src), black_box(dst)))
        })
    });
}

fn bench_gateway(c: &mut Criterion) {
    let topo = Dragonfly::new(DragonflyConfig::paper_2550());
    let g = topo.num_groups() as u32;
    c.bench_function("topology/gateway_2550", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let a = dragonfly_topology::ids::GroupId(i % g);
            let bb = dragonfly_topology::ids::GroupId((i + 1 + i % (g - 1)) % g);
            i = i.wrapping_add(1);
            if a == bb {
                return;
            }
            black_box(topo.gateway(black_box(a), black_box(bb)));
        })
    });
}

criterion_group!(
    benches,
    bench_minimal_port,
    bench_minimal_route,
    bench_gateway
);
criterion_main!(benches);
