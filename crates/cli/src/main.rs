//! `qadaptive-cli` — the data-driven experiment runner.
//!
//! Every experiment in this repository is described by a serialisable spec
//! (see `dragonfly_sim::spec`); this binary loads those specs from TOML or
//! JSON scenario files and runs them:
//!
//! ```text
//! qadaptive-cli run   scenarios/adv1_qadaptive.toml [--seed S] [--format text|csv|json] [--out FILE]
//! qadaptive-cli sweep scenarios/adv_shift_sweep.toml [--threads N] [--format text|csv|json] [--out FILE]
//! qadaptive-cli figure <5|6|7|8|9|table1|memory|maxq> [--quick|--full] [--threads N] [--seed S]
//!                      [--format text|csv|json] [--out FILE]
//! qadaptive-cli list
//! qadaptive-cli topologies                              # registered topologies + parameter schemas
//! qadaptive-cli workloads                               # closed-loop workload kinds + scenario forms
//! qadaptive-cli show  scenarios/adv1_qadaptive.toml     # parse, validate, echo as TOML + JSON
//! ```

use dragonfly_bench::figures;
use dragonfly_bench::harness::{apply_engine_overrides, markdown_table, parse_shards, BenchArgs};
use dragonfly_engine::config::ShardKind;
use dragonfly_sim::spec::{ExperimentSpec, SweepSpec};
use std::process::ExitCode;

/// Output format for results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

/// A CLI failure: the message printed to stderr plus the process exit
/// code. Usage and configuration mistakes exit 2 (the historical code
/// for every error); runtime failures after a simulation ran — e.g. the
/// finished report failing to serialise — exit 1, so scripts can tell
/// "you called it wrong" from "it broke late".
struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    /// A post-run runtime failure (exit code 1).
    fn runtime(message: String) -> Self {
        Self { message, code: 1 }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { message, code: 2 }
    }
}

/// Flags shared by all subcommands.
struct CommonFlags {
    threads: usize,
    format: Format,
    out: Option<String>,
    quick_full: Option<bool>, // Some(false) = --quick, Some(true) = --full
    seed: Option<u64>,
    baseline: Option<String>,
    tolerance_pct: Option<f64>,
    allow_cpu_mismatch: bool,
    shards: Option<ShardKind>,
    pipeline: Option<bool>,
    cache_dir: Option<String>,
    no_cache: bool,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<String>,
    checkpoint_format: Option<dragonfly_sim::checkpoint::CheckpointFormat>,
    resume_from: Option<String>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<CommonFlags, String> {
    let mut flags = CommonFlags {
        threads: 0,
        format: Format::Text,
        out: None,
        quick_full: None,
        seed: None,
        baseline: None,
        tolerance_pct: None,
        allow_cpu_mismatch: false,
        shards: None,
        pipeline: None,
        cache_dir: None,
        no_cache: false,
        checkpoint_every: None,
        checkpoint_path: None,
        checkpoint_format: None,
        resume_from: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                flags.threads = next_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => {
                flags.seed = Some(
                    next_value(args, &mut i, "--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--baseline" => flags.baseline = Some(next_value(args, &mut i, "--baseline")?),
            "--tolerance-pct" => {
                flags.tolerance_pct = Some(
                    next_value(args, &mut i, "--tolerance-pct")?
                        .parse()
                        .map_err(|e| format!("--tolerance-pct: {e}"))?,
                );
            }
            "--format" => {
                flags.format = match next_value(args, &mut i, "--format")?.as_str() {
                    "text" => Format::Text,
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--out" => flags.out = Some(next_value(args, &mut i, "--out")?),
            "--shards" => {
                flags.shards = Some(parse_shards(&next_value(args, &mut i, "--shards")?)?);
            }
            "--pipeline" => flags.pipeline = Some(true),
            "--no-pipeline" => flags.pipeline = Some(false),
            "--allow-cpu-mismatch" => flags.allow_cpu_mismatch = true,
            "--cache-dir" => flags.cache_dir = Some(next_value(args, &mut i, "--cache-dir")?),
            "--no-cache" => flags.no_cache = true,
            "--checkpoint-every" => {
                flags.checkpoint_every = Some(
                    next_value(args, &mut i, "--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every (simulated ns): {e}"))?,
                );
            }
            "--checkpoint-path" => {
                flags.checkpoint_path = Some(next_value(args, &mut i, "--checkpoint-path")?);
            }
            "--checkpoint-format" => {
                flags.checkpoint_format = Some(
                    next_value(args, &mut i, "--checkpoint-format")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-format: {e}"))?,
                );
            }
            "--resume-from" => {
                flags.resume_from = Some(next_value(args, &mut i, "--resume-from")?);
            }
            "--quick" => flags.quick_full = Some(false),
            "--full" => flags.quick_full = Some(true),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            positional => flags.positional.push(positional.to_string()),
        }
        i += 1;
    }
    Ok(flags)
}

fn next_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Write to `--out` or stdout.
fn emit(flags: &CommonFlags, content: &str) -> Result<(), String> {
    match &flags.out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn usage() -> String {
    let figure_ids: Vec<&str> = figures::catalog().iter().map(|f| f.id).collect();
    format!(
        "qadaptive-cli — data-driven Dragonfly experiment runner\n\
         \n\
         USAGE:\n\
         \u{20}   qadaptive-cli run    <spec.toml|spec.json>  [--seed S] [--shards auto|single|N]\n\
         \u{20}                        [--pipeline|--no-pipeline] [--format text|csv|json] [--out FILE]\n\
         \u{20}                        [--checkpoint-every NS [--checkpoint-path FILE]\n\
         \u{20}                        [--checkpoint-format binary|json]] [--resume-from FILE]\n\
         \u{20}   qadaptive-cli sweep  <spec.toml|spec.json>  [--threads N] [--seed S] [--shards ...]\n\
         \u{20}                        [--pipeline|--no-pipeline] [--format text|csv|json] [--out FILE]\n\
         \u{20}   qadaptive-cli figure <id>  [--quick|--full] [--threads N] [--seed S] [--shards ...]\n\
         \u{20}                        [--pipeline|--no-pipeline] [--cache-dir DIR] [--no-cache]\n\
         \u{20}                        [--format text|csv|json] [--out FILE]\n\
         \u{20}   qadaptive-cli show   <spec.toml|spec.json>   (parse + validate + echo both encodings)\n\
         \u{20}   qadaptive-cli list                           (catalog of figures and their titles)\n\
         \u{20}   qadaptive-cli topologies                     (registered topologies + parameter schemas)\n\
         \u{20}   qadaptive-cli workloads                      (closed-loop workload kinds + scenario forms)\n\
         \u{20}   qadaptive-cli bench  [--quick|--full] [--seed S] [--shards N] [--out BENCH.json]\n\
         \u{20}                        [--baseline BENCH.json] [--tolerance-pct 30] [--allow-cpu-mismatch]\n\
         \u{20}                        (1,056-node engine smoke benchmark: calendar vs binary-heap\n\
         \u{20}                         scheduler plus barrier-vs-pipelined sharded legs;\n\
         \u{20}                         --baseline fails on an events/sec regression and refuses a\n\
         \u{20}                         baseline from a host with a different CPU count unless\n\
         \u{20}                         --allow-cpu-mismatch gates on the speedup ratio instead)\n\
         \n\
         FIGURE IDS: {}\n\
         \n\
         `run` takes a single-experiment spec, `sweep` a grid spec — see\n\
         scenarios/README.md for the file format. `--shards` runs each\n\
         simulation on N conservative-parallel cores (figure runs default\n\
         to `auto` on multi-core hosts) and `--no-pipeline` selects the\n\
         lockstep barrier instead of overlapped windows; results are\n\
         bit-for-bit identical for every combination. `figure --cache-dir`\n\
         reuses results of unchanged points across invocations — shard,\n\
         pipeline and scheduler choices never invalidate the cache.\n\
         \n\
         `run --checkpoint-every NS` snapshots the full simulation state\n\
         every NS simulated nanoseconds (to --checkpoint-path, default\n\
         <scenario>.ckpt, each snapshot atomically overwriting the\n\
         last). Snapshots default to a compact binary encoding;\n\
         `--checkpoint-format json` writes diffable JSON instead (default\n\
         path <scenario>.ckpt.json), and `--resume-from` reads either\n\
         format, sniffing it from the file. `--resume-from FILE`\n\
         continues a snapshotted run\n\
         bit-for-bit — the resumed run reproduces the uninterrupted\n\
         report exactly. Works with any --shards/--pipeline setting, and\n\
         the resuming run may use a different one (snapshots are\n\
         partition-independent); the scenario, seed and all other\n\
         overrides must match the checkpointing run.",
        figure_ids.join(", ")
    )
}

/// Reject accepted-but-ignored flags: an unknown flag already errors, so a
/// silently dropped one would wrongly look like it took effect.
fn reject_mode_flags(flags: &CommonFlags, command: &str) -> Result<(), String> {
    if flags.quick_full.is_some() {
        return Err(format!(
            "--quick/--full only apply to `figure` and `bench`; `{command}` takes its windows from the spec file"
        ));
    }
    reject_bench_flags(flags, command)
}

/// `--baseline`/`--tolerance-pct`/`--allow-cpu-mismatch` only make sense
/// for `bench`.
fn reject_bench_flags(flags: &CommonFlags, command: &str) -> Result<(), String> {
    if flags.baseline.is_some() || flags.tolerance_pct.is_some() || flags.allow_cpu_mismatch {
        return Err(format!(
            "--baseline/--tolerance-pct/--allow-cpu-mismatch only apply to `bench`, not `{command}`"
        ));
    }
    Ok(())
}

/// `--cache-dir`/`--no-cache` only make sense for `figure`.
fn reject_cache_flags(flags: &CommonFlags, command: &str) -> Result<(), String> {
    if flags.cache_dir.is_some() || flags.no_cache {
        return Err(format!(
            "--cache-dir/--no-cache only apply to `figure`, not `{command}`"
        ));
    }
    Ok(())
}

/// `--checkpoint-every`/`--checkpoint-path`/`--resume-from` only make
/// sense for `run` (one resumable simulation).
fn reject_checkpoint_flags(flags: &CommonFlags, command: &str) -> Result<(), String> {
    if flags.checkpoint_every.is_some()
        || flags.checkpoint_path.is_some()
        || flags.checkpoint_format.is_some()
        || flags.resume_from.is_some()
    {
        return Err(format!(
            "--checkpoint-every/--checkpoint-path/--checkpoint-format/--resume-from \
             only apply to `run`, not `{command}`"
        ));
    }
    Ok(())
}

/// Execute one experiment, through the checkpoint/resume path when any of
/// `--checkpoint-every`/`--checkpoint-path`/`--resume-from` was given.
///
/// Checkpoints are written atomically (temp file + rename, see
/// `RunCheckpoint::save`) to `--checkpoint-path`, defaulting to the
/// scenario path with `.ckpt.json` appended; each snapshot replaces the
/// previous one, so the path always holds a complete resumable state even
/// if the process dies mid-write.
fn run_spec_maybe_checkpointed(
    flags: &CommonFlags,
    scenario_path: &str,
    spec: &ExperimentSpec,
) -> Result<dragonfly_metrics::report::SimulationReport, String> {
    use dragonfly_sim::checkpoint::{CheckpointFormat, RunCheckpoint};
    let plain = flags.checkpoint_every.is_none()
        && flags.checkpoint_path.is_none()
        && flags.checkpoint_format.is_none()
        && flags.resume_from.is_none();
    if plain {
        return Ok(spec.run());
    }
    if flags.checkpoint_path.is_some() && flags.checkpoint_every.is_none() {
        return Err(
            "--checkpoint-path needs --checkpoint-every NS to decide when to snapshot".to_string(),
        );
    }
    if flags.checkpoint_format.is_some() && flags.checkpoint_every.is_none() {
        return Err(
            "--checkpoint-format needs --checkpoint-every NS (it only affects written snapshots; \
             --resume-from sniffs the format from the file itself)"
                .to_string(),
        );
    }
    let format = flags.checkpoint_format.unwrap_or_default();
    let resume = match &flags.resume_from {
        Some(file) => {
            let ck = RunCheckpoint::load(file).map_err(|e| e.to_string())?;
            eprintln!(
                "resuming from {file} at t = {} ns (simulated)",
                ck.engine.now
            );
            Some(ck)
        }
        None => None,
    };
    let ck_path = flags
        .checkpoint_path
        .clone()
        .unwrap_or_else(|| match format {
            CheckpointFormat::Binary => format!("{scenario_path}.ckpt"),
            CheckpointFormat::Json => format!("{scenario_path}.ckpt.json"),
        });
    let mut save_error: Option<String> = None;
    let report = spec
        .run_checkpointed(resume.as_ref(), flags.checkpoint_every, |ck| {
            if save_error.is_none() {
                match ck.save_format(&ck_path, format) {
                    Ok(()) => eprintln!(
                        "checkpoint: {ck_path} @ t = {} ns (simulated)",
                        ck.engine.now
                    ),
                    Err(e) => save_error = Some(e.to_string()),
                }
            }
        })
        .map_err(|e| e.to_string())?;
    match save_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

fn cmd_run(flags: &CommonFlags) -> Result<(), CliError> {
    reject_mode_flags(flags, "run")?;
    reject_cache_flags(flags, "run")?;
    if flags.threads != 0 {
        return Err(
            "--threads only applies to `sweep` and `figure` (a `run` is one simulation)"
                .to_string()
                .into(),
        );
    }
    let path = flags
        .positional
        .first()
        .ok_or_else(|| format!("`run` needs a scenario file\n\n{}", usage()))?;
    let mut spec = ExperimentSpec::from_path(path).map_err(|e| {
        if SweepSpec::from_path(path).is_ok() {
            format!("{path} is a sweep spec — use `qadaptive-cli sweep {path}`")
        } else {
            e.to_string()
        }
    })?;
    if let Some(seed) = flags.seed {
        spec.seed = Some(seed);
    }
    apply_engine_overrides(&mut spec.engine, flags.shards, flags.pipeline);
    eprintln!("running: {}", spec.label());
    let report = run_spec_maybe_checkpointed(flags, path, &spec)?;
    eprintln!(
        "perf: {} events in {:.3} s wall ({:.2} M events/s)",
        report.events_processed,
        report.wall_seconds,
        report.events_processed as f64 / report.wall_seconds.max(1e-9) / 1e6
    );
    match flags.format {
        Format::Text => emit(flags, &report.summary())?,
        Format::Csv => emit(
            flags,
            &format!(
                "{}\n{}",
                dragonfly_metrics::report::SimulationReport::csv_header(),
                report.csv_row()
            ),
        )?,
        Format::Json => {
            let json = serde_json::to_string_pretty(&report).map_err(|e| {
                CliError::runtime(format!("cannot serialise the finished report as JSON: {e}"))
            })?;
            emit(flags, &json)?;
        }
    }
    Ok(())
}

fn cmd_sweep(flags: &CommonFlags) -> Result<(), CliError> {
    reject_mode_flags(flags, "sweep")?;
    reject_cache_flags(flags, "sweep")?;
    reject_checkpoint_flags(flags, "sweep")?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| format!("`sweep` needs a scenario file\n\n{}", usage()))?;
    let mut sweep = SweepSpec::from_path(path).map_err(|e| {
        if ExperimentSpec::from_path(path).is_ok() {
            format!("{path} is a single-experiment spec — use `qadaptive-cli run {path}`")
        } else {
            e.to_string()
        }
    })?;
    if let Some(seed) = flags.seed {
        sweep.seed = Some(seed);
    }
    apply_engine_overrides(&mut sweep.engine, flags.shards, flags.pipeline);
    eprintln!(
        "sweeping: {} ({} points)",
        if sweep.name.is_empty() {
            path.as_str()
        } else {
            &sweep.name
        },
        sweep.len()
    );
    let result = sweep.run_parallel(flags.threads);
    let (total_events, total_wall): (u64, f64) =
        result.reports.iter().fold((0, 0.0), |(e, w), r| {
            (e + r.events_processed, w + r.wall_seconds)
        });
    eprintln!(
        "perf: {} events in {:.3} s simulation wall time ({:.2} M events/s per worker)",
        total_events,
        total_wall,
        total_events as f64 / total_wall.max(1e-9) / 1e6
    );
    match flags.format {
        Format::Text => {
            let rows: Vec<Vec<String>> = result
                .reports
                .iter()
                .map(|r| {
                    vec![
                        r.routing.clone(),
                        r.traffic.clone(),
                        format!("{:.2}", r.offered_load),
                        format!("{:.3}", r.throughput),
                        format!("{:.2}", r.mean_latency_us),
                        format!("{:.2}", r.p99_latency_us),
                        format!("{:.2}", r.mean_hops),
                    ]
                })
                .collect();
            let mut text = markdown_table(
                &[
                    "routing",
                    "traffic",
                    "load",
                    "throughput",
                    "mean (us)",
                    "p99 (us)",
                    "hops",
                ],
                &rows,
            );
            if result.has_repetitions() {
                let aggregated = result.aggregated();
                let agg_rows: Vec<Vec<String>> = aggregated
                    .iter()
                    .map(|a| {
                        vec![
                            a.routing.clone(),
                            a.traffic.clone(),
                            format!("{:.2}", a.offered_load),
                            a.runs.to_string(),
                            a.throughput.display(),
                            a.mean_latency_us.display(),
                            a.p99_latency_us.display(),
                        ]
                    })
                    .collect();
                text.push_str("\n\naggregated over repeated seeds (mean ± std error):\n");
                text.push_str(&markdown_table(
                    &[
                        "routing",
                        "traffic",
                        "load",
                        "runs",
                        "throughput",
                        "mean (us)",
                        "p99 (us)",
                    ],
                    &agg_rows,
                ));
            }
            emit(flags, &text)?;
        }
        Format::Csv => {
            if !result.has_repetitions() {
                return Ok(emit(flags, &result.to_csv())?);
            }
            // Raw and aggregated rows have different schemas, so a single
            // CSV stream would not be machine-readable. With --out the
            // aggregation goes to a sibling `<stem>_aggregated.csv` file;
            // on stdout the two blocks are printed with a separator.
            match &flags.out {
                Some(path) => {
                    emit(flags, &result.to_csv())?;
                    let agg_path = match path.strip_suffix(".csv") {
                        Some(stem) => format!("{stem}_aggregated.csv"),
                        None => format!("{path}_aggregated.csv"),
                    };
                    std::fs::write(&agg_path, result.to_csv_aggregated())
                        .map_err(|e| format!("cannot write {agg_path}: {e}"))?;
                    eprintln!("wrote {agg_path}");
                }
                None => {
                    println!("{}", result.to_csv());
                    println!("\n# aggregated over repeated seeds");
                    println!("{}", result.to_csv_aggregated());
                }
            }
        }
        Format::Json => {
            let json = serde_json::to_string_pretty(&result.with_aggregates()).map_err(|e| {
                CliError::runtime(format!(
                    "cannot serialise the finished sweep results as JSON: {e}"
                ))
            })?;
            emit(flags, &json)?;
        }
    }
    Ok(())
}

fn cmd_bench(flags: &CommonFlags) -> Result<(), CliError> {
    if let Some(extra) = flags.positional.first() {
        return Err(format!("`bench` takes no positional argument (got `{extra}`)").into());
    }
    reject_cache_flags(flags, "bench")?;
    reject_checkpoint_flags(flags, "bench")?;
    // Reject accepted-but-ignored flags, matching the other subcommands.
    if flags.threads != 0 {
        return Err(
            "--threads does not apply to `bench` (the smoke workload is one simulation at a time)"
                .to_string()
                .into(),
        );
    }
    if flags.format != Format::Json && flags.format != Format::Text {
        return Err(
            "`bench` output is JSON (use --format json or omit the flag)"
                .to_string()
                .into(),
        );
    }
    if flags.pipeline.is_some() {
        return Err(
            "--pipeline/--no-pipeline do not apply to `bench` — it always measures both the \
             barrier and the pipelined leg"
                .to_string()
                .into(),
        );
    }
    let quick = !matches!(flags.quick_full, Some(true));
    let seed = flags.seed.unwrap_or(1);
    // The sharded leg's shard count (0 = the bench default of 4).
    let bench_shards = match flags.shards {
        None => 0,
        Some(ShardKind::Single) => 1,
        Some(ShardKind::Fixed(n)) => n,
        Some(ShardKind::Auto) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    // Load the baseline before the (expensive) run so a bad path fails fast.
    let baseline: Option<dragonfly_bench::SmokeBench> = match &flags.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            Some(serde_json::from_str(&text).map_err(|e| format!("bad baseline {path}: {e}"))?)
        }
        None => None,
    };
    eprintln!(
        "benchmarking the 1,056-node engine smoke workload plus the 110,976-node \
         bounded-memory scale leg ({}, seed {seed})...",
        if quick { "quick" } else { "full" }
    );
    let bench = dragonfly_bench::run_smoke_sharded(quick, seed, bench_shards);
    eprintln!(
        "calendar:    {:>12.0} events/s  ({} events in {:.3} s)",
        bench.calendar.events_per_sec, bench.calendar.events, bench.calendar.wall_s
    );
    eprintln!(
        "binary heap: {:>12.0} events/s  ({} events in {:.3} s)",
        bench.binary_heap.events_per_sec, bench.binary_heap.events, bench.binary_heap.wall_s
    );
    eprintln!(
        "barrier x{}:   {:>12.0} events/s  ({} events in {:.3} s)",
        bench.shards, bench.sharded.events_per_sec, bench.sharded.events, bench.sharded.wall_s
    );
    eprintln!(
        "pipelined x{}: {:>12.0} events/s  ({} events in {:.3} s)",
        bench.shards,
        bench.pipelined.events_per_sec,
        bench.pipelined.events,
        bench.pipelined.wall_s
    );
    eprintln!(
        "closed loop: {:>12.0} events/s  ({} events in {:.3} s; AllReduce JCT {:.1} us, {} ranks)",
        bench.closed_loop.events_per_sec,
        bench.closed_loop.events,
        bench.closed_loop.wall_s,
        bench.closed_loop_jct_us,
        bench.closed_loop_ranks
    );
    eprintln!(
        "faulted UGAL:{:>12.0} events/s  ({} events in {:.3} s; {} dropped, {:.2}x of healthy)",
        bench.faulted.events_per_sec,
        bench.faulted.events,
        bench.faulted.wall_s,
        bench.faulted_dropped,
        bench.fault_overhead_ratio
    );
    eprintln!(
        "scale x{}:    {:>12.0} events/s  ({} events in {:.3} s; {} nodes, {} delivered, \
         {:.2} GiB resident)",
        bench.shards,
        bench.scale.events_per_sec,
        bench.scale.events,
        bench.scale.wall_s,
        bench.scale_nodes,
        bench.scale_delivered,
        bench.scale_memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    );
    eprintln!(
        "snapshot:    {:.2} MiB JSON -> {:.2} MiB binary ({:.1}x smaller; save {:.1}x, \
         load {:.1}x faster)",
        bench.snapshot.json_bytes as f64 / (1024.0 * 1024.0),
        bench.snapshot.binary_bytes as f64 / (1024.0 * 1024.0),
        bench.snapshot.size_ratio,
        bench.snapshot.save_speedup,
        bench.snapshot.load_speedup
    );
    eprintln!("calendar-vs-heap speedup:  {:.2}x", bench.speedup);
    eprintln!(
        "shard speedup:             {:.2}x on {} host CPUs{}",
        bench.shard_speedup,
        bench.host_cpus,
        if bench.speedups_overhead_only {
            " (overhead-only: fewer CPUs than shards, ratio records lockstep cost, not speedup)"
        } else {
            ""
        }
    );
    eprintln!(
        "pipelined-vs-barrier:      {:.2}x{}",
        bench.pipeline_speedup,
        if bench.speedups_overhead_only {
            " (overhead-only: fewer CPUs than shards, overlap cannot show as wall-clock speedup)"
        } else {
            ""
        }
    );
    if let Some(baseline) = &baseline {
        let tolerance = flags.tolerance_pct.unwrap_or(30.0) / 100.0;
        let verdict = dragonfly_bench::check_against_baseline(
            &bench,
            baseline,
            tolerance,
            flags.allow_cpu_mismatch,
        )?;
        eprintln!("baseline ok: {verdict}");
    }
    let json = serde_json::to_string_pretty(&bench).map_err(|e| {
        CliError::runtime(format!(
            "cannot serialise the finished bench results as JSON: {e}"
        ))
    })?;
    Ok(emit(flags, &json)?)
}

fn cmd_figure(flags: &CommonFlags) -> Result<(), String> {
    reject_bench_flags(flags, "figure")?;
    reject_checkpoint_flags(flags, "figure")?;
    let id = flags
        .positional
        .first()
        .ok_or_else(|| format!("`figure` needs an id\n\n{}", usage()))?;
    let mut bench_args = BenchArgs::from_slice(&[]);
    if let Some(full) = flags.quick_full {
        bench_args.mode = if full {
            dragonfly_bench::RunMode::Full
        } else {
            dragonfly_bench::RunMode::Quick
        };
    }
    bench_args.threads = flags.threads;
    if let Some(seed) = flags.seed {
        bench_args.seed = seed;
    }
    bench_args.shards = flags.shards;
    bench_args.pipeline = flags.pipeline;
    bench_args.cache_dir = flags.cache_dir.as_ref().map(std::path::PathBuf::from);
    bench_args.no_cache = flags.no_cache;
    if flags.format == Format::Text && flags.out.is_some() {
        // Text output streams to stdout as the figure runs; silently
        // producing no file would look like success.
        return Err(
            "`figure --out` needs `--format csv` or `--format json` (text streams to stdout)"
                .to_string(),
        );
    }
    let result = figures::run_figure(id, &bench_args)?;
    match flags.format {
        Format::Text => Ok(()), // already streamed to stdout by run_figure
        Format::Csv => emit(flags, &result.to_csv()),
        Format::Json => emit(flags, &result.to_json()),
    }
}

fn cmd_show(flags: &CommonFlags) -> Result<(), String> {
    reject_bench_flags(flags, "show")?;
    reject_cache_flags(flags, "show")?;
    reject_checkpoint_flags(flags, "show")?;
    if flags.shards.is_some() || flags.pipeline.is_some() {
        return Err(
            "--shards/--pipeline apply to commands that run simulations, not `show`".to_string(),
        );
    }
    let path = flags
        .positional
        .first()
        .ok_or_else(|| format!("`show` needs a scenario file\n\n{}", usage()))?;
    // A scenario file is either a single experiment or a sweep; try both.
    match ExperimentSpec::from_path(path) {
        Ok(spec) => {
            println!("# valid single-experiment spec: {}\n", spec.label());
            println!("# --- TOML ---\n{}", spec.to_toml());
            println!("# --- JSON ---\n{}", spec.to_json());
            Ok(())
        }
        Err(experiment_error) => match SweepSpec::from_path(path) {
            Ok(sweep) => {
                println!("# valid sweep spec ({} points)\n", sweep.len());
                println!("# --- TOML ---\n{}", sweep.to_toml());
                println!("# --- JSON ---\n{}", sweep.to_json());
                Ok(())
            }
            Err(sweep_error) => Err(format!(
                "not a valid spec:\n  as experiment: {experiment_error}\n  as sweep: {sweep_error}"
            )),
        },
    }
}

fn cmd_topologies() -> Result<(), String> {
    let rows: Vec<Vec<String>> = dragonfly_topology::TopologySpec::catalog()
        .iter()
        .map(|info| {
            vec![
                info.name.to_string(),
                info.parameters.to_string(),
                info.constraints.to_string(),
                info.domains.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["topology", "parameters", "constraints", "sharding domains"],
            &rows
        )
    );
    println!("\nscenario-file forms (the legacy bare [topology] p/a/h table still reads as a dragonfly):\n");
    for info in dragonfly_topology::TopologySpec::catalog() {
        println!("{}\n", info.example);
    }
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    let rows: Vec<Vec<String>> = dragonfly_workload::WorkloadSpec::catalog()
        .iter()
        .map(|info| {
            vec![
                info.name.to_string(),
                info.parameters.to_string(),
                info.constraints.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["workload", "parameters", "constraints"], &rows)
    );
    println!(
        "\nscenario-file forms (add a [workload] to any run or sweep spec; the spec's\n\
         `load` then acts as a message-count intensity multiplier, default 1.0):\n"
    );
    for info in dragonfly_workload::WorkloadSpec::catalog() {
        println!("{}\n", info.example);
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    let rows: Vec<Vec<String>> = figures::catalog()
        .iter()
        .map(|f| vec![f.id.to_string(), f.title.to_string()])
        .collect();
    println!("{}", markdown_table(&["id", "title"], &rows));
    println!("\nrun one with: qadaptive-cli figure <id> [--quick|--full]");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let outcome: Result<(), CliError> = match parse_flags(rest) {
        Err(e) => Err(e.into()),
        Ok(flags) => match command.as_str() {
            "run" => cmd_run(&flags),
            "sweep" => cmd_sweep(&flags),
            "figure" => cmd_figure(&flags).map_err(CliError::from),
            "bench" => cmd_bench(&flags),
            "show" => cmd_show(&flags).map_err(CliError::from),
            "list" => cmd_list().map_err(CliError::from),
            "topologies" | "--list-topologies" => cmd_topologies().map_err(CliError::from),
            "workloads" | "--list-workloads" => cmd_workloads().map_err(CliError::from),
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                Ok(())
            }
            other => Err(CliError::from(format!(
                "unknown command `{other}`\n\n{}",
                usage()
            ))),
        },
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
