//! End-to-end tests over the checked-in scenario library: every file under
//! `scenarios/` must parse, validate and round-trip through both
//! encodings, and the quickstart scenario must run through the actual
//! `qadaptive-cli` binary.

use dragonfly_sim::spec::{ExperimentSpec, SweepSpec};
use std::path::PathBuf;
use std::process::Command;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn scenario_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    assert!(files.len() >= 5, "the scenario library went missing");
    files
}

/// Each scenario parses as exactly one of the two spec kinds and
/// round-trips through TOML and JSON.
#[test]
fn every_scenario_parses_and_round_trips() {
    for path in scenario_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        match ExperimentSpec::from_path(&path) {
            Ok(spec) => {
                assert_eq!(
                    ExperimentSpec::from_toml(&spec.to_toml()).unwrap(),
                    spec,
                    "{name}: TOML round trip"
                );
                assert_eq!(
                    ExperimentSpec::from_json(&spec.to_json()).unwrap(),
                    spec,
                    "{name}: JSON round trip"
                );
            }
            Err(as_experiment) => {
                let sweep = SweepSpec::from_path(&path).unwrap_or_else(|as_sweep| {
                    panic!("{name}: not a spec ({as_experiment} / {as_sweep})")
                });
                assert_eq!(
                    SweepSpec::from_toml(&sweep.to_toml()).unwrap(),
                    sweep,
                    "{name}: TOML round trip"
                );
                assert_eq!(
                    SweepSpec::from_json(&sweep.to_json()).unwrap(),
                    sweep,
                    "{name}: JSON round trip"
                );
            }
        }
    }
}

/// The quickstart scenario runs end to end through the real binary and
/// produces a parseable JSON report.
#[test]
fn quickstart_scenario_runs_through_the_cli_binary() {
    let output = Command::new(env!("CARGO_BIN_EXE_qadaptive-cli"))
        .args([
            "run",
            scenarios_dir()
                .join("quickstart_tiny.toml")
                .to_str()
                .unwrap(),
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report: dragonfly_metrics::report::SimulationReport =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).expect("valid JSON report");
    assert_eq!(report.routing, "Q-adp");
    assert_eq!(report.traffic, "UR");
    assert!(report.packets_delivered > 100);
    assert!(report.throughput > 0.1);
}

/// A repeated-seed sweep emits both raw rows and per-point mean/std-error
/// aggregation in the JSON output.
#[test]
fn repeated_seed_sweep_reports_raw_and_aggregated_rows() {
    let output = Command::new(env!("CARGO_BIN_EXE_qadaptive-cli"))
        .args([
            "sweep",
            scenarios_dir()
                .join("seeds_mean_ci_tiny.toml")
                .to_str()
                .unwrap(),
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let result: dragonfly_sim::sweep::SweepOutput =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).expect("valid JSON output");
    assert_eq!(result.raw.len(), 12, "2 routings x 2 loads x 3 seeds");
    assert_eq!(result.aggregated.len(), 4, "one row per (routing, load)");
    for row in &result.aggregated {
        assert_eq!(row.runs, 3);
        assert!(row.throughput.mean > 0.0);
    }
    // The stderr perf line makes engine regressions visible in normal use.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("events/s"), "stderr: {stderr}");
}

/// `figure` ids resolve and the static ones execute through the binary.
#[test]
fn static_figures_run_through_the_cli_binary() {
    for id in ["table1", "memory"] {
        let output = Command::new(env!("CARGO_BIN_EXE_qadaptive-cli"))
            .args(["figure", id, "--format", "csv"])
            .output()
            .expect("binary runs");
        assert!(output.status.success(), "figure {id} failed");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("1,056-node"), "figure {id}: {stdout}");
    }
}
