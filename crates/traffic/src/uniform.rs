//! Uniform random traffic (UR): every message targets a uniformly random
//! node other than the sender. The benign, load-balanced best case for
//! Dragonfly, where minimal routing is optimal.

use crate::pattern::TrafficPattern;
use dragonfly_topology::ids::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform-random destination selection over `num_nodes` nodes.
#[derive(Debug, Clone, Copy)]
pub struct UniformRandom {
    num_nodes: usize,
}

impl UniformRandom {
    /// Create the pattern for a system with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes >= 2, "uniform random needs at least two nodes");
        Self { num_nodes }
    }
}

impl TrafficPattern for UniformRandom {
    fn name(&self) -> String {
        "UR".to_string()
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        loop {
            let dst = NodeId::from_index(rng.gen_range(0..self.num_nodes));
            if dst != src {
                return dst;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use rand::SeedableRng;

    #[test]
    fn basic_invariants() {
        let mut p = UniformRandom::new(72);
        check_basic_invariants(&mut p, 72, 20);
        assert_eq!(p.name(), "UR");
    }

    #[test]
    fn destinations_cover_the_whole_system() {
        let mut p = UniformRandom::new(64);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(p.destination(NodeId(0), &mut rng));
        }
        // All 63 possible destinations should appear.
        assert_eq!(seen.len(), 63);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_system_is_rejected() {
        UniformRandom::new(1);
    }
}
