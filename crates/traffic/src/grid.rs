//! The 3-D logical grid used by the HPC communication patterns of
//! Section 6 of the paper.
//!
//! The paper arranges the 2,550-node system as a 5 × 10 × 51 grid. That is
//! exactly `(p, a, g)` — one grid "column" per host slot, one "row" per
//! router of a group, one "plane" per group — so the same construction
//! generalises to any Dragonfly configuration (the 1,056-node system
//! becomes 4 × 8 × 33) and, via the locality-domain abstraction, to any
//! topology: `x` = host slots per router, `z` = domains, `y` = the rest.
//!
//! Node `n` maps to coordinates `(x, y, z)` with `x = n mod X`,
//! `y = (n / X) mod Y`, `z = n / (X·Y)`; because `X·Y` equals the number
//! of nodes per domain, the `z` coordinate is the node's domain.

use dragonfly_topology::ids::NodeId;
use dragonfly_topology::{AnyTopology, Topology};
use serde::{Deserialize, Serialize};

/// A 3-D grid over the node identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid3D {
    /// Size along X (fastest varying).
    pub x: usize,
    /// Size along Y.
    pub y: usize,
    /// Size along Z (slowest varying).
    pub z: usize,
}

impl Grid3D {
    /// Build a grid with explicit dimensions; `x*y*z` must equal the node
    /// count it is used with.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x >= 1 && y >= 1 && z >= 1);
        Self { x, y, z }
    }

    /// The paper's construction, generalised: `x` = host slots per router
    /// (`p` on a Dragonfly), `z` = locality domains (`g`), `y` = nodes
    /// per domain divided by `x` (`a`).
    pub fn for_system(topo: &AnyTopology) -> Self {
        let x = topo.max_nodes_per_router();
        let z = topo.num_domains();
        let y = topo.num_nodes() / (x * z);
        let grid = Self::new(x, y, z);
        assert_eq!(grid.len(), topo.num_nodes());
        grid
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Whether the grid is empty (never true for valid dimensions).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of a node.
    pub fn coords(&self, node: NodeId) -> (usize, usize, usize) {
        let n = node.index();
        debug_assert!(n < self.len());
        (n % self.x, (n / self.x) % self.y, n / (self.x * self.y))
    }

    /// Node at the given coordinates.
    pub fn node(&self, x: usize, y: usize, z: usize) -> NodeId {
        debug_assert!(x < self.x && y < self.y && z < self.z);
        NodeId::from_index(x + self.x * (y + self.y * z))
    }

    /// The six (wrap-around) nearest neighbours of a node along the three
    /// axes, excluding the node itself and with duplicates removed (which
    /// matters for dimensions of size 1 or 2).
    pub fn stencil_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let (x, y, z) = self.coords(node);
        let mut out = Vec::with_capacity(6);
        let candidates = [
            self.node((x + 1) % self.x, y, z),
            self.node((x + self.x - 1) % self.x, y, z),
            self.node(x, (y + 1) % self.y, z),
            self.node(x, (y + self.y - 1) % self.y, z),
            self.node(x, y, (z + 1) % self.z),
            self.node(x, y, (z + self.z - 1) % self.z),
        ];
        for c in candidates {
            if c != node && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// All members of a node's Z-axis communicator (same `(x, y)`, every
    /// `z`) — the Many-to-Many communicator of the paper, `g` nodes long.
    pub fn z_communicator(&self, node: NodeId) -> Vec<NodeId> {
        let (x, y, _) = self.coords(node);
        (0..self.z).map(|z| self.node(x, y, z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_topology::config::DragonflyConfig;

    #[test]
    fn paper_grid_dimensions() {
        use dragonfly_topology::Dragonfly;
        let t2550: AnyTopology = Dragonfly::new(DragonflyConfig::paper_2550()).into();
        let g = Grid3D::for_system(&t2550);
        assert_eq!((g.x, g.y, g.z), (5, 10, 51));
        let t1056: AnyTopology = Dragonfly::new(DragonflyConfig::paper_1056()).into();
        let g = Grid3D::for_system(&t1056);
        assert_eq!((g.x, g.y, g.z), (4, 8, 33));
    }

    #[test]
    fn grid_generalises_to_fattree_and_hyperx() {
        use dragonfly_topology::{FatTree, FatTreeConfig, HyperX, HyperXConfig};
        let ft: AnyTopology = FatTree::new(FatTreeConfig::tiny()).into();
        let g = Grid3D::for_system(&ft);
        assert_eq!(g.len(), ft.num_nodes());
        assert_eq!(g.z, ft.num_domains());
        let hx: AnyTopology = HyperX::new(HyperXConfig::tiny()).into();
        let g = Grid3D::for_system(&hx);
        assert_eq!((g.x, g.y, g.z), (2, 6, 6));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid3D::new(4, 8, 33);
        for n in 0..g.len() {
            let node = NodeId::from_index(n);
            let (x, y, z) = g.coords(node);
            assert_eq!(g.node(x, y, z), node);
        }
    }

    #[test]
    fn z_coordinate_is_the_domain() {
        let topo: AnyTopology = dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()).into();
        let g = Grid3D::for_system(&topo);
        for node in topo.nodes() {
            let (_, _, z) = g.coords(node);
            assert_eq!(z, topo.domain_of_node(node).index());
        }
    }

    #[test]
    fn stencil_neighbors_are_six_distinct_nodes_on_large_grids() {
        let g = Grid3D::new(5, 10, 51);
        let n = g.node(2, 3, 7);
        let neigh = g.stencil_neighbors(n);
        assert_eq!(neigh.len(), 6);
        assert!(!neigh.contains(&n));
    }

    #[test]
    fn stencil_neighbors_deduplicate_on_small_dimensions() {
        // x dimension of size 2: +1 and -1 wrap to the same node.
        let g = Grid3D::new(2, 4, 9);
        let n = g.node(0, 0, 0);
        let neigh = g.stencil_neighbors(n);
        assert_eq!(neigh.len(), 5);
    }

    #[test]
    fn z_communicator_spans_all_groups() {
        let g = Grid3D::new(4, 8, 33);
        let comm = g.z_communicator(g.node(1, 2, 5));
        assert_eq!(comm.len(), 33);
        let zs: std::collections::HashSet<usize> = comm.iter().map(|n| g.coords(*n).2).collect();
        assert_eq!(zs.len(), 33);
    }
}
