//! Additional synthetic traffic patterns commonly used in interconnect
//! routing studies.
//!
//! The paper evaluates the two extremes (UR and ADV+i) plus three HPC
//! patterns, and notes that "in reality, system-scale traffic patterns can
//! be any case between these two extremes". The patterns in this module
//! populate that middle ground and are used by the extended examples and
//! ablation studies:
//!
//! * **Bit complement** — node `i` sends to node `N-1-i`; a classic
//!   permutation that pairs distant nodes and loads global links evenly.
//! * **Transpose** — the system is viewed as a `√N × √N` matrix (rounded),
//!   node `(r, c)` sends to `(c, r)`; half of the pairs cross groups.
//! * **Hotspot** — a configurable fraction of traffic targets a small set
//!   of hot nodes (e.g. I/O or metadata servers), the rest is uniform.
//! * **Group-local** — every node picks destinations inside its own group,
//!   exercising only local links (a sanity extreme where minimal routing is
//!   unbeatable and non-minimal detours are pure waste).

use crate::pattern::TrafficPattern;
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::Rng;

/// Bit-complement permutation: node `i` → node `N − 1 − i`.
#[derive(Debug, Clone, Copy)]
pub struct BitComplement {
    num_nodes: usize,
}

impl BitComplement {
    /// Create the pattern for a system with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes >= 2);
        Self { num_nodes }
    }

    /// The fixed partner of a node.
    pub fn partner(&self, node: NodeId) -> NodeId {
        NodeId::from_index(self.num_nodes - 1 - node.index())
    }
}

impl TrafficPattern for BitComplement {
    fn name(&self) -> String {
        "Bit Complement".to_string()
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let partner = self.partner(src);
        if partner == src {
            // The middle node of an odd-sized system has no complement;
            // fall back to a uniform destination.
            loop {
                let dst = NodeId::from_index(rng.gen_range(0..self.num_nodes));
                if dst != src {
                    return dst;
                }
            }
        }
        partner
    }
}

/// Matrix-transpose permutation on a `side × side` arrangement of the
/// nodes (nodes beyond the square fall back to uniform destinations).
#[derive(Debug, Clone, Copy)]
pub struct Transpose {
    num_nodes: usize,
    side: usize,
}

impl Transpose {
    /// Create the pattern for a system with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes >= 4);
        let side = (num_nodes as f64).sqrt().floor() as usize;
        Self { num_nodes, side }
    }

    /// The transposed partner, if the node lies inside the square.
    pub fn partner(&self, node: NodeId) -> Option<NodeId> {
        let n = node.index();
        if n >= self.side * self.side {
            return None;
        }
        let (r, c) = (n / self.side, n % self.side);
        Some(NodeId::from_index(c * self.side + r))
    }
}

impl TrafficPattern for Transpose {
    fn name(&self) -> String {
        format!("Transpose {}x{}", self.side, self.side)
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        match self.partner(src) {
            Some(dst) if dst != src => dst,
            _ => loop {
                let dst = NodeId::from_index(rng.gen_range(0..self.num_nodes));
                if dst != src {
                    return dst;
                }
            },
        }
    }
}

/// Hotspot traffic: with probability `hot_fraction` the destination is one
/// of `hot_nodes` (chosen uniformly), otherwise uniform random.
#[derive(Debug, Clone)]
pub struct Hotspot {
    num_nodes: usize,
    hot_nodes: Vec<NodeId>,
    hot_fraction: f64,
}

impl Hotspot {
    /// Create a hotspot pattern. `hot_nodes` must be non-empty and
    /// `hot_fraction` in `[0, 1]`.
    pub fn new(num_nodes: usize, hot_nodes: Vec<NodeId>, hot_fraction: f64) -> Self {
        assert!(num_nodes >= 2);
        assert!(!hot_nodes.is_empty(), "hotspot needs at least one hot node");
        assert!((0.0..=1.0).contains(&hot_fraction));
        assert!(hot_nodes.iter().all(|n| n.index() < num_nodes));
        Self {
            num_nodes,
            hot_nodes,
            hot_fraction,
        }
    }

    /// A convenient default: the first node of every fourth domain is hot
    /// and receives 20 % of all traffic.
    pub fn default_for(topo: &AnyTopology) -> Self {
        let hot = (0..topo.num_domains())
            .step_by(4)
            .map(|d| NodeId::from_index(topo.node_range_of_domain(d).start))
            .collect();
        Self::new(topo.num_nodes(), hot, 0.2)
    }
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> String {
        format!(
            "Hotspot ({} hot nodes, {:.0}%)",
            self.hot_nodes.len(),
            self.hot_fraction * 100.0
        )
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        if rng.gen::<f64>() < self.hot_fraction {
            let dst = self.hot_nodes[rng.gen_range(0..self.hot_nodes.len())];
            if dst != src {
                return dst;
            }
        }
        loop {
            let dst = NodeId::from_index(rng.gen_range(0..self.num_nodes));
            if dst != src {
                return dst;
            }
        }
    }
}

/// Domain-local traffic: destinations are uniform within the sender's
/// locality domain (group/pod/row).
#[derive(Debug, Clone, Copy)]
pub struct GroupLocal {
    nodes_per_group: usize,
}

impl GroupLocal {
    /// Create the pattern for a topology (domains must hold equally many
    /// nodes, which all shipped topologies satisfy).
    pub fn new(topo: &AnyTopology) -> Self {
        let nodes_per_group = topo.node_range_of_domain(0).len();
        assert!(nodes_per_group >= 2);
        assert_eq!(nodes_per_group * topo.num_domains(), topo.num_nodes());
        Self { nodes_per_group }
    }
}

impl TrafficPattern for GroupLocal {
    fn name(&self) -> String {
        "Group Local".to_string()
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let base = (src.index() / self.nodes_per_group) * self.nodes_per_group;
        loop {
            let dst = NodeId::from_index(base + rng.gen_range(0..self.nodes_per_group));
            if dst != src {
                return dst;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use dragonfly_topology::config::DragonflyConfig;
    use rand::SeedableRng;

    fn topo() -> AnyTopology {
        dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    #[test]
    fn bit_complement_pairs_mirror_nodes() {
        let t = topo();
        let mut p = BitComplement::new(t.num_nodes());
        check_basic_invariants(&mut p, t.num_nodes(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.destination(NodeId(0), &mut rng), NodeId(71));
        assert_eq!(p.destination(NodeId(71), &mut rng), NodeId(0));
        assert_eq!(p.partner(NodeId(10)), NodeId(61));
    }

    #[test]
    fn bit_complement_middle_node_of_odd_system_falls_back() {
        let mut p = BitComplement::new(9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert_ne!(p.destination(NodeId(4), &mut rng), NodeId(4));
        }
    }

    #[test]
    fn transpose_swaps_rows_and_columns() {
        let mut p = Transpose::new(64);
        let mut rng = StdRng::seed_from_u64(3);
        // (1, 2) -> (2, 1): node 10 -> node 17 on an 8x8 arrangement.
        assert_eq!(p.destination(NodeId(10), &mut rng), NodeId(17));
        // Diagonal nodes have themselves as partner and must fall back.
        for _ in 0..20 {
            assert_ne!(p.destination(NodeId(9), &mut rng), NodeId(9));
        }
        check_basic_invariants(&mut p, 64, 4);
    }

    #[test]
    fn hotspot_concentrates_the_requested_fraction() {
        let hot = vec![NodeId(5)];
        let mut p = Hotspot::new(72, hot, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| p.destination(NodeId(0), &mut rng) == NodeId(5))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate = {rate}");
        check_basic_invariants(&mut p, 72, 4);
    }

    #[test]
    fn hotspot_default_builds_from_topology() {
        let t = topo();
        let p = Hotspot::default_for(&t);
        assert!(p.name().contains("Hotspot"));
        assert!(!p.hot_nodes.is_empty());
    }

    #[test]
    fn group_local_never_leaves_the_group() {
        let t = topo();
        let mut p = GroupLocal::new(&t);
        let mut rng = StdRng::seed_from_u64(5);
        for node in t.nodes() {
            for _ in 0..10 {
                let dst = p.destination(node, &mut rng);
                assert_eq!(t.domain_of_node(dst), t.domain_of_node(node));
                assert_ne!(dst, node);
            }
        }
    }
}
