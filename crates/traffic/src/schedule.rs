//! Offered-load schedules.
//!
//! Most experiments use a constant offered load; the dynamic-load study
//! (paper Figure 8) switches the load at a given time. A schedule is a
//! piecewise-constant function of time returning the offered load in
//! `[0, 1]` (fraction of each node's injection bandwidth).

use serde::{Deserialize, Serialize};

/// A piecewise-constant offered-load schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSchedule {
    /// `(start_time_ns, offered_load)` segments sorted by start time; the
    /// first segment must start at 0.
    segments: Vec<(u64, f64)>,
}

impl LoadSchedule {
    /// A constant offered load.
    pub fn constant(load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        Self {
            segments: vec![(0, load)],
        }
    }

    /// A single step: `before` until `switch_at_ns`, then `after`.
    /// This is the shape used in the paper's Figure 8.
    pub fn step(before: f64, after: f64, switch_at_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&before) && (0.0..=1.0).contains(&after));
        Self {
            segments: vec![(0, before), (switch_at_ns, after)],
        }
    }

    /// An arbitrary piecewise-constant schedule. Segments are sorted by
    /// start time; the earliest segment is shifted to start at 0 if needed.
    pub fn piecewise(mut segments: Vec<(u64, f64)>) -> Self {
        assert!(!segments.is_empty(), "schedule needs at least one segment");
        segments.sort_by_key(|(t, _)| *t);
        segments[0].0 = 0;
        for (_, load) in &segments {
            assert!(*load >= 0.0 && *load <= 1.0, "load must be in [0, 1]");
        }
        Self { segments }
    }

    /// The offered load at time `now_ns`.
    pub fn load_at(&self, now_ns: u64) -> f64 {
        let mut current = self.segments[0].1;
        for (start, load) in &self.segments {
            if *start <= now_ns {
                current = *load;
            } else {
                break;
            }
        }
        current
    }

    /// The largest load anywhere in the schedule (used for sizing
    /// warmup heuristics).
    pub fn peak_load(&self) -> f64 {
        self.segments.iter().map(|(_, l)| *l).fold(0.0, f64::max)
    }

    /// Check a schedule that may have been built by deserialisation
    /// (which bypasses the constructor asserts): segments must exist,
    /// start at 0, be sorted, and carry loads in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("schedule needs at least one segment".to_string());
        }
        if self.segments[0].0 != 0 {
            return Err(format!(
                "the first schedule segment must start at 0, not {}",
                self.segments[0].0
            ));
        }
        for window in self.segments.windows(2) {
            if window[0].0 > window[1].0 {
                return Err(format!(
                    "schedule segments must be sorted by start time ({} after {})",
                    window[1].0, window[0].0
                ));
            }
        }
        for (start, load) in &self.segments {
            if !(0.0..=1.0).contains(load) {
                return Err(format!(
                    "schedule load {load} at {start} ns must be in [0, 1]"
                ));
            }
        }
        Ok(())
    }

    /// The time of the next load change strictly after `now_ns`, if any.
    pub fn next_change_after(&self, now_ns: u64) -> Option<u64> {
        self.segments.iter().map(|(t, _)| *t).find(|t| *t > now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_changes() {
        let s = LoadSchedule::constant(0.8);
        assert_eq!(s.load_at(0), 0.8);
        assert_eq!(s.load_at(10_000_000), 0.8);
        assert_eq!(s.peak_load(), 0.8);
        assert_eq!(s.next_change_after(0), None);
    }

    #[test]
    fn step_switches_at_the_given_time() {
        // Figure 8(a): UR 0.4 -> 0.8 at 1600 us.
        let s = LoadSchedule::step(0.4, 0.8, 1_600_000);
        assert_eq!(s.load_at(0), 0.4);
        assert_eq!(s.load_at(1_599_999), 0.4);
        assert_eq!(s.load_at(1_600_000), 0.8);
        assert_eq!(s.peak_load(), 0.8);
        assert_eq!(s.next_change_after(0), Some(1_600_000));
        assert_eq!(s.next_change_after(1_600_000), None);
    }

    #[test]
    fn piecewise_sorts_and_anchors_at_zero() {
        let s = LoadSchedule::piecewise(vec![(500, 0.2), (100, 0.6), (900, 0.1)]);
        assert_eq!(s.load_at(0), 0.6);
        assert_eq!(s.load_at(600), 0.2);
        assert_eq!(s.load_at(2_000), 0.1);
    }

    #[test]
    #[should_panic(expected = "load must be in [0, 1]")]
    fn out_of_range_load_rejected() {
        LoadSchedule::constant(1.5);
    }
}
