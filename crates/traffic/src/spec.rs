//! A serialisable description of "which traffic pattern to run".

use crate::adversarial::Adversarial;
use crate::neighbors::RandomNeighbors;
use crate::pattern::TrafficPattern;
use crate::stencil::{ManyToMany, Stencil3D};
use crate::uniform::UniformRandom;
use dragonfly_topology::{AnyTopology, Topology};
use serde::{Deserialize, Serialize};

/// The traffic patterns evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Uniform random.
    UniformRandom,
    /// Adversarial shift-by-`shift`.
    Adversarial {
        /// The group shift (ADV+shift).
        shift: usize,
    },
    /// 3D Stencil on the `(p, a, g)` grid.
    Stencil3D,
    /// Many-to-Many over Z-axis communicators of the `(p, a, g)` grid.
    ManyToMany,
    /// Random Neighbors with the paper's 6–20 peers per node.
    RandomNeighbors,
}

/// The default pattern is uniform random (used when an experiment spec
/// omits the `traffic` field).
impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec::UniformRandom
    }
}

impl TrafficSpec {
    /// The five patterns of the 2,550-node case study (Figure 9), in plot
    /// order.
    pub fn paper_case_study() -> Vec<TrafficSpec> {
        vec![
            TrafficSpec::UniformRandom,
            TrafficSpec::Adversarial { shift: 1 },
            TrafficSpec::Stencil3D,
            TrafficSpec::ManyToMany,
            TrafficSpec::RandomNeighbors,
        ]
    }

    /// Instantiate the pattern for a topology. `seed` only matters for
    /// patterns with frozen random structure (Random Neighbors).
    pub fn build(&self, topo: &AnyTopology, seed: u64) -> Box<dyn TrafficPattern> {
        match *self {
            TrafficSpec::UniformRandom => Box::new(UniformRandom::new(topo.num_nodes())),
            TrafficSpec::Adversarial { shift } => Box::new(Adversarial::new(topo, shift)),
            TrafficSpec::Stencil3D => Box::new(Stencil3D::new(topo)),
            TrafficSpec::ManyToMany => Box::new(ManyToMany::new(topo)),
            TrafficSpec::RandomNeighbors => {
                Box::new(RandomNeighbors::paper(topo.num_nodes(), seed))
            }
        }
    }

    /// The label used in reports and figure output.
    pub fn label(&self) -> String {
        match self {
            TrafficSpec::UniformRandom => "UR".to_string(),
            TrafficSpec::Adversarial { shift } => format!("ADV+{shift}"),
            TrafficSpec::Stencil3D => "3D Stencil".to_string(),
            TrafficSpec::ManyToMany => "Many to Many".to_string(),
            TrafficSpec::RandomNeighbors => "Random Neighbors".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use dragonfly_topology::config::DragonflyConfig;

    #[test]
    fn every_spec_builds_and_satisfies_invariants_on_every_topology() {
        use dragonfly_topology::{Dragonfly, FatTree, FatTreeConfig, HyperX, HyperXConfig};
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ];
        for topo in &topologies {
            let mut specs = TrafficSpec::paper_case_study();
            specs.push(TrafficSpec::Adversarial { shift: 3 });
            for spec in specs {
                let mut pattern = spec.build(topo, 99);
                check_basic_invariants(pattern.as_mut(), topo.num_nodes(), 5);
            }
        }
    }

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<String> = TrafficSpec::paper_case_study()
            .iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "UR",
                "ADV+1",
                "3D Stencil",
                "Many to Many",
                "Random Neighbors"
            ]
        );
    }

    #[test]
    fn case_study_has_five_patterns() {
        assert_eq!(TrafficSpec::paper_case_study().len(), 5);
    }
}
