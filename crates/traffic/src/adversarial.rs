//! Adversarial traffic (ADV+i): every node in locality domain `D` sends
//! to a random node in domain `(D + i) mod d`. On the Dragonfly the
//! single global link between the two groups becomes the bottleneck, so
//! minimal routing collapses and Valiant / adaptive routing is required;
//! on a HyperX the same construction stresses one column link per router
//! pair, and on a fat-tree it exercises the core planes.
//!
//! The shift `i` also controls how much *local-link* congestion appears in
//! intermediate domains when packets are routed non-minimally: on the
//! 1,056-node Dragonfly ADV+1 causes the least and ADV+4 the most
//! (paper Figure 3).

use crate::pattern::TrafficPattern;
use dragonfly_topology::ids::{GroupId, NodeId};
use dragonfly_topology::{AnyTopology, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// ADV+shift destination selection.
#[derive(Debug, Clone)]
pub struct Adversarial {
    shift: usize,
    /// Node-id range of each domain (contiguous by the topology
    /// contract).
    domain_nodes: Vec<Range<usize>>,
}

impl Adversarial {
    /// Create ADV+`shift` for the given topology.
    pub fn new(topo: &AnyTopology, shift: usize) -> Self {
        let d = topo.num_domains();
        assert!(d >= 2, "adversarial traffic needs at least two domains");
        assert!(
            !shift.is_multiple_of(d),
            "a shift that is a multiple of the domain count would target the sender's own domain"
        );
        Self {
            shift: shift % d,
            domain_nodes: (0..d).map(|i| topo.node_range_of_domain(i)).collect(),
        }
    }

    /// The domain targeted by nodes of `domain`.
    pub fn target_domain(&self, domain: GroupId) -> GroupId {
        GroupId::from_index((domain.index() + self.shift) % self.domain_nodes.len())
    }

    fn domain_of(&self, node: NodeId) -> GroupId {
        let i = self
            .domain_nodes
            .partition_point(|r| r.start <= node.index())
            - 1;
        GroupId::from_index(i)
    }
}

impl TrafficPattern for Adversarial {
    fn name(&self) -> String {
        format!("ADV+{}", self.shift)
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let target = self.target_domain(self.domain_of(src));
        let range = &self.domain_nodes[target.index()];
        let offset = rng.gen_range(0..range.len());
        NodeId::from_index(range.start + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::{Dragonfly, FatTree, FatTreeConfig, HyperX, HyperXConfig};
    use rand::SeedableRng;

    fn topo() -> AnyTopology {
        Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    #[test]
    fn basic_invariants() {
        let t = topo();
        let mut p = Adversarial::new(&t, 1);
        check_basic_invariants(&mut p, t.num_nodes(), 10);
        assert_eq!(p.name(), "ADV+1");
    }

    #[test]
    fn every_destination_lands_in_the_shifted_domain_on_every_topology() {
        let topologies: Vec<AnyTopology> = vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        for t in &topologies {
            for shift in [1usize, t.num_domains() - 1] {
                let mut p = Adversarial::new(t, shift);
                for node in t.nodes() {
                    let dst = p.destination(node, &mut rng);
                    let expected = (t.domain_of_node(node).index() + shift) % t.num_domains();
                    assert_eq!(
                        t.domain_of_node(dst).index(),
                        expected,
                        "{}: node {node}",
                        t.kind_name()
                    );
                }
            }
        }
    }

    #[test]
    fn shift_wraps_around_the_domain_count() {
        let t = topo();
        let p = Adversarial::new(&t, t.num_domains() + 2);
        assert_eq!(p.target_domain(GroupId(0)), GroupId(2));
    }

    #[test]
    #[should_panic(expected = "multiple of the domain count")]
    fn zero_shift_is_rejected() {
        Adversarial::new(&topo(), 0);
    }
}
