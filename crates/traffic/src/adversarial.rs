//! Adversarial traffic (ADV+i): every node in group `G` sends to a random
//! node in group `(G + i) mod g`. The single global link between the two
//! groups becomes the bottleneck, so minimal routing collapses and Valiant
//! / adaptive routing is required.
//!
//! The shift `i` also controls how much *local-link* congestion appears in
//! intermediate groups when packets are routed non-minimally: on the
//! 1,056-node system ADV+1 causes the least and ADV+4 the most
//! (paper Figure 3).

use crate::pattern::TrafficPattern;
use dragonfly_topology::ids::{GroupId, NodeId};
use dragonfly_topology::Dragonfly;
use rand::rngs::StdRng;
use rand::Rng;

/// ADV+shift destination selection.
#[derive(Debug, Clone)]
pub struct Adversarial {
    shift: usize,
    num_groups: usize,
    nodes_per_group: usize,
}

impl Adversarial {
    /// Create ADV+`shift` for the given topology.
    pub fn new(topo: &Dragonfly, shift: usize) -> Self {
        let g = topo.num_groups();
        assert!(g >= 2, "adversarial traffic needs at least two groups");
        assert!(
            !shift.is_multiple_of(g),
            "a shift that is a multiple of the group count would target the sender's own group"
        );
        Self {
            shift: shift % g,
            num_groups: g,
            nodes_per_group: topo.config().a * topo.config().p,
        }
    }

    /// The group targeted by nodes of `group`.
    pub fn target_group(&self, group: GroupId) -> GroupId {
        GroupId::from_index((group.index() + self.shift) % self.num_groups)
    }

    fn group_of(&self, node: NodeId) -> GroupId {
        GroupId::from_index(node.index() / self.nodes_per_group)
    }
}

impl TrafficPattern for Adversarial {
    fn name(&self) -> String {
        format!("ADV+{}", self.shift)
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let target = self.target_group(self.group_of(src));
        let offset = rng.gen_range(0..self.nodes_per_group);
        NodeId::from_index(target.index() * self.nodes_per_group + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use dragonfly_topology::config::DragonflyConfig;
    use rand::SeedableRng;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyConfig::tiny())
    }

    #[test]
    fn basic_invariants() {
        let t = topo();
        let mut p = Adversarial::new(&t, 1);
        check_basic_invariants(&mut p, t.num_nodes(), 10);
        assert_eq!(p.name(), "ADV+1");
    }

    #[test]
    fn every_destination_lands_in_the_shifted_group() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        for shift in [1usize, 4] {
            let mut p = Adversarial::new(&t, shift);
            for node in t.nodes() {
                let dst = p.destination(node, &mut rng);
                let expected = (t.group_of_node(node).index() + shift) % t.num_groups();
                assert_eq!(t.group_of_node(dst).index(), expected);
            }
        }
    }

    #[test]
    fn shift_wraps_around_the_group_count() {
        let t = topo();
        let p = Adversarial::new(&t, t.num_groups() + 2);
        assert_eq!(p.target_group(GroupId(0)), GroupId(2));
    }

    #[test]
    #[should_panic(expected = "multiple of the group count")]
    fn zero_shift_is_rejected() {
        Adversarial::new(&topo(), 0);
    }
}
