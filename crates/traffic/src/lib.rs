//! # dragonfly-traffic
//!
//! The traffic patterns used in the Q-adaptive paper's evaluation:
//!
//! * **UR** — uniform random (best case for Dragonfly, Section 2.2);
//! * **ADV+i** — adversarial shift-by-i (worst case; ADV+1 has the least
//!   local-link congestion on the 1,056-node system, ADV+4 the most);
//! * **3D Stencil** — nearest-neighbour exchange on a 3-D grid
//!   (Section 6);
//! * **Many-to-Many** — all-to-all inside 51-node communicators laid out
//!   along the grid's Z axis (Section 6);
//! * **Random Neighbors** — each node talks to a fixed random set of 6–20
//!   peers (Section 6);
//! * plus piecewise-constant **dynamic load schedules** for the paper's
//!   Figure 8.
//!
//! A pattern only answers one question — *"node `n` wants to send a
//! message; to whom?"* — while message timing (offered load) is handled by
//! the [`schedule`] module and the injector in `dragonfly-sim`.

pub mod adversarial;
pub mod grid;
pub mod neighbors;
pub mod pattern;
pub mod schedule;
pub mod spec;
pub mod stencil;
pub mod synthetic;
pub mod uniform;

pub use pattern::TrafficPattern;
pub use schedule::LoadSchedule;
pub use spec::TrafficSpec;
