//! The 3D Stencil and Many-to-Many HPC communication patterns (Section 6).

use crate::grid::Grid3D;
use crate::pattern::TrafficPattern;
use dragonfly_topology::ids::NodeId;
use dragonfly_topology::AnyTopology;
use rand::rngs::StdRng;
use rand::Rng;

/// 3D Stencil: each node exchanges messages with its six wrap-around grid
/// neighbours (±x, ±y, ±z), a representative one-to-many pattern for
/// finite-difference style scientific codes.
#[derive(Debug, Clone)]
pub struct Stencil3D {
    grid: Grid3D,
    /// Pre-computed neighbour lists, one per node.
    neighbors: Vec<Vec<NodeId>>,
}

impl Stencil3D {
    /// Build the stencil on the paper's `(p, a, g)`-style grid for `topo`.
    pub fn new(topo: &AnyTopology) -> Self {
        Self::with_grid(Grid3D::for_system(topo))
    }

    /// Build the stencil on an explicit grid.
    pub fn with_grid(grid: Grid3D) -> Self {
        let neighbors = (0..grid.len())
            .map(|n| grid.stencil_neighbors(NodeId::from_index(n)))
            .collect();
        Self { grid, neighbors }
    }

    /// The underlying grid.
    pub fn grid(&self) -> Grid3D {
        self.grid
    }
}

impl TrafficPattern for Stencil3D {
    fn name(&self) -> String {
        format!("3D Stencil {}x{}x{}", self.grid.x, self.grid.y, self.grid.z)
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let neigh = &self.neighbors[src.index()];
        neigh[rng.gen_range(0..neigh.len())]
    }
}

/// Many-to-Many: nodes sharing an `(x, y)` grid column form a communicator
/// of `g` members (51 on the 2,550-node system) that performs all-to-all
/// exchanges, representative of parallel FFT codes (pF3D, NAMD, VASP).
#[derive(Debug, Clone)]
pub struct ManyToMany {
    grid: Grid3D,
    communicators: Vec<Vec<NodeId>>,
}

impl ManyToMany {
    /// Build the pattern on the paper's `(p, a, g)`-style grid for `topo`.
    pub fn new(topo: &AnyTopology) -> Self {
        Self::with_grid(Grid3D::for_system(topo))
    }

    /// Build the pattern on an explicit grid.
    pub fn with_grid(grid: Grid3D) -> Self {
        let communicators = (0..grid.len())
            .map(|n| grid.z_communicator(NodeId::from_index(n)))
            .collect();
        Self {
            grid,
            communicators,
        }
    }

    /// Number of members of each communicator.
    pub fn communicator_size(&self) -> usize {
        self.grid.z
    }
}

impl TrafficPattern for ManyToMany {
    fn name(&self) -> String {
        format!("Many to Many ({} per comm)", self.grid.z)
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let comm = &self.communicators[src.index()];
        loop {
            let dst = comm[rng.gen_range(0..comm.len())];
            if dst != src {
                return dst;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use dragonfly_topology::config::DragonflyConfig;
    use dragonfly_topology::Topology;
    use rand::SeedableRng;

    fn topo() -> AnyTopology {
        dragonfly_topology::Dragonfly::new(DragonflyConfig::tiny()).into()
    }

    #[test]
    fn stencil_basic_invariants() {
        let t = topo();
        let mut p = Stencil3D::new(&t);
        check_basic_invariants(&mut p, t.num_nodes(), 10);
        assert!(p.name().contains("Stencil"));
    }

    #[test]
    fn stencil_only_targets_grid_neighbors() {
        let t = topo();
        let grid = Grid3D::for_system(&t);
        let mut p = Stencil3D::new(&t);
        let mut rng = StdRng::seed_from_u64(2);
        for node in t.nodes() {
            let allowed = grid.stencil_neighbors(node);
            for _ in 0..20 {
                let dst = p.destination(node, &mut rng);
                assert!(allowed.contains(&dst));
            }
        }
    }

    #[test]
    fn many_to_many_stays_in_the_communicator() {
        let t = topo();
        let grid = Grid3D::for_system(&t);
        let mut p = ManyToMany::new(&t);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.communicator_size(), t.num_domains());
        for node in t.nodes() {
            let comm = grid.z_communicator(node);
            for _ in 0..20 {
                let dst = p.destination(node, &mut rng);
                assert!(comm.contains(&dst));
                assert_ne!(dst, node);
            }
        }
    }

    #[test]
    fn many_to_many_basic_invariants() {
        let t = topo();
        let mut p = ManyToMany::new(&t);
        check_basic_invariants(&mut p, t.num_nodes(), 10);
    }
}
