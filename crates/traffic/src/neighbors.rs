//! Random Neighbors: each node spreads its communication uniformly over a
//! fixed random set of 6–20 peers, mimicking the computation-aware
//! load-balancing phase of applications such as NAMD (Section 6 of the
//! paper).

use crate::pattern::TrafficPattern;
use dragonfly_topology::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-neighbour destination selection with per-node fixed peer sets.
#[derive(Debug, Clone)]
pub struct RandomNeighbors {
    peers: Vec<Vec<NodeId>>,
}

impl RandomNeighbors {
    /// Build peer sets for `num_nodes` nodes: each node gets between
    /// `min_peers` and `max_peers` (inclusive) distinct random peers.
    /// The construction is deterministic in `seed`.
    pub fn new(num_nodes: usize, min_peers: usize, max_peers: usize, seed: u64) -> Self {
        assert!(num_nodes >= 2);
        assert!(min_peers >= 1 && min_peers <= max_peers);
        assert!(
            max_peers < num_nodes,
            "cannot pick {max_peers} distinct peers out of {num_nodes} nodes"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let peers = (0..num_nodes)
            .map(|n| {
                let count = rng.gen_range(min_peers..=max_peers);
                let mut set = Vec::with_capacity(count);
                while set.len() < count {
                    let peer = NodeId::from_index(rng.gen_range(0..num_nodes));
                    if peer.index() != n && !set.contains(&peer) {
                        set.push(peer);
                    }
                }
                set
            })
            .collect();
        Self { peers }
    }

    /// The paper's parameters: 6–20 targets per node, clamped on systems
    /// too small to supply 20 distinct peers (e.g. a k=4 fat-tree's 16
    /// nodes). Systems with more than 20 nodes are unaffected.
    pub fn paper(num_nodes: usize, seed: u64) -> Self {
        let max = 20.min(num_nodes.saturating_sub(1)).max(1);
        Self::new(num_nodes, 6.min(max), max, seed)
    }

    /// The peer set of one node.
    pub fn peers_of(&self, node: NodeId) -> &[NodeId] {
        &self.peers[node.index()]
    }
}

impl TrafficPattern for RandomNeighbors {
    fn name(&self) -> String {
        "Random Neighbors".to_string()
    }

    fn destination(&mut self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let peers = &self.peers[src.index()];
        peers[rng.gen_range(0..peers.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::test_util::check_basic_invariants;
    use rand::SeedableRng;

    #[test]
    fn basic_invariants() {
        let mut p = RandomNeighbors::paper(72, 1);
        check_basic_invariants(&mut p, 72, 10);
        assert_eq!(p.name(), "Random Neighbors");
    }

    #[test]
    fn peer_counts_are_in_range_and_distinct() {
        let p = RandomNeighbors::paper(200, 9);
        for n in 0..200 {
            let peers = p.peers_of(NodeId::from_index(n));
            assert!(peers.len() >= 6 && peers.len() <= 20);
            let distinct: std::collections::HashSet<_> = peers.iter().collect();
            assert_eq!(distinct.len(), peers.len());
            assert!(!peers.contains(&NodeId::from_index(n)));
        }
    }

    #[test]
    fn construction_is_deterministic_in_the_seed() {
        let a = RandomNeighbors::paper(100, 5);
        let b = RandomNeighbors::paper(100, 5);
        let c = RandomNeighbors::paper(100, 6);
        assert_eq!(a.peers_of(NodeId(3)), b.peers_of(NodeId(3)));
        assert_ne!(
            a.peers.iter().flatten().collect::<Vec<_>>(),
            c.peers.iter().flatten().collect::<Vec<_>>()
        );
    }

    #[test]
    fn destinations_only_come_from_the_peer_set() {
        let mut p = RandomNeighbors::paper(64, 2);
        let mut rng = StdRng::seed_from_u64(11);
        for n in 0..64 {
            let src = NodeId::from_index(n);
            let allowed: Vec<NodeId> = p.peers_of(src).to_vec();
            for _ in 0..30 {
                assert!(allowed.contains(&p.destination(src, &mut rng)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct peers")]
    fn too_many_peers_rejected() {
        RandomNeighbors::new(10, 6, 10, 0);
    }
}
