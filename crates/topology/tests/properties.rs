//! Property-style tests for the Dragonfly topology, exercised over a full
//! grid of small valid configurations plus seeded random selections (the
//! offline build has no proptest, so the strategies are materialised as
//! deterministic loops — strictly more cases than the old 64-case runs).

use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::{GroupId, NodeId, Port, RouterId};
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::topology::Neighbor;
use dragonfly_topology::Dragonfly;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every valid configuration in the modest range the old proptest strategy
/// produced: `p ∈ 1..=4`, `a ∈ 2..=8`, `h ∈ 1..=4`.
fn all_small_configs() -> Vec<DragonflyConfig> {
    let mut configs = Vec::new();
    for p in 1..=4 {
        for a in 2..=8 {
            for h in 1..=4 {
                configs.push(DragonflyConfig::new(p, a, h).unwrap());
            }
        }
    }
    configs
}

/// Derived quantities satisfy the defining identities of Table 1.
#[test]
fn derived_quantities_consistent() {
    for cfg in all_small_configs() {
        assert_eq!(cfg.radix(), cfg.p + cfg.h + cfg.a - 1);
        assert_eq!(cfg.groups(), cfg.a * cfg.h + 1);
        assert_eq!(cfg.routers(), cfg.groups() * cfg.a);
        assert_eq!(cfg.nodes(), cfg.routers() * cfg.p);
        assert_eq!(cfg.fabric_ports(), cfg.radix() - cfg.p);
    }
}

/// Every fabric link is symmetric: following a port and then the reported
/// reverse port returns to the origin.
#[test]
fn links_are_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for cfg in all_small_configs() {
        let t = Dragonfly::new(cfg);
        let ports: Vec<Port> = t.layout().fabric_port_iter().collect();
        for _ in 0..16 {
            let r = RouterId::from_index(rng.gen_range(0..t.num_routers()));
            let port = ports[rng.gen_range(0..ports.len())];
            match t.neighbor(r, port) {
                Neighbor::Router { router, port: back } => match t.neighbor(router, back) {
                    Neighbor::Router {
                        router: r2,
                        port: p2,
                    } => {
                        assert_eq!(r2, r);
                        assert_eq!(p2, port);
                    }
                    _ => panic!("reverse of a fabric link was a node"),
                },
                Neighbor::Node(_) => panic!("fabric port resolved to a node"),
            }
        }
    }
}

/// The minimal route between any two routers is within the diameter and
/// crosses at most one global link.
#[test]
fn minimal_routes_within_diameter() {
    let mut rng = StdRng::seed_from_u64(0xD1A);
    for cfg in all_small_configs() {
        let t = Dragonfly::new(cfg);
        for _ in 0..32 {
            let src = RouterId::from_index(rng.gen_range(0..t.num_routers()));
            let dst = RouterId::from_index(rng.gen_range(0..t.num_routers()));
            let kinds = t.minimal_hop_kinds(src, dst);
            assert!(kinds.len() <= 3);
            let globals = kinds
                .iter()
                .filter(|k| matches!(k, dragonfly_topology::paths::HopKind::Global))
                .count();
            assert!(globals <= 1);
            if t.group_of_router(src) != t.group_of_router(dst) {
                assert_eq!(globals, 1);
            }
        }
    }
}

/// Every node belongs to exactly one router and the ejection port kind is
/// always a host port.
#[test]
fn node_attachment() {
    let mut rng = StdRng::seed_from_u64(0x0DE);
    for cfg in all_small_configs() {
        let t = Dragonfly::new(cfg);
        for _ in 0..16 {
            let node = NodeId::from_index(rng.gen_range(0..t.num_nodes()));
            let router = t.router_of_node(node);
            assert!(t.nodes_of_router(router).any(|x| x == node));
            assert_eq!(t.port_kind(t.ejection_port(node)), PortKind::Host);
        }
    }
}

/// The gateway map is a bijection between "other groups" and
/// (router, global port) pairs within each group.
#[test]
fn gateway_bijection() {
    let mut rng = StdRng::seed_from_u64(0x6A7E);
    for cfg in all_small_configs() {
        let t = Dragonfly::new(cfg);
        let group = GroupId::from_index(rng.gen_range(0..t.num_groups()));
        let mut seen = std::collections::HashSet::new();
        for other in t.groups() {
            if other == group {
                continue;
            }
            let (router, port) = t.gateway(group, other);
            assert_eq!(t.group_of_router(router), group);
            assert!(seen.insert((router, port)), "gateway reused a port");
            assert_eq!(t.global_neighbor_group(router, port), other);
        }
        assert_eq!(seen.len(), t.num_groups() - 1);
    }
}
