//! Property-based tests for the Dragonfly topology.

use dragonfly_topology::config::DragonflyConfig;
use dragonfly_topology::ids::{GroupId, NodeId, Port, RouterId};
use dragonfly_topology::ports::PortKind;
use dragonfly_topology::topology::Neighbor;
use dragonfly_topology::Dragonfly;
use proptest::prelude::*;

/// Strategy producing a modest range of valid configurations.
fn config_strategy() -> impl Strategy<Value = DragonflyConfig> {
    (1usize..=4, 2usize..=8, 1usize..=4)
        .prop_map(|(p, a, h)| DragonflyConfig::new(p, a, h).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Derived quantities satisfy the defining identities of Table 1.
    #[test]
    fn derived_quantities_consistent(cfg in config_strategy()) {
        prop_assert_eq!(cfg.radix(), cfg.p + cfg.h + cfg.a - 1);
        prop_assert_eq!(cfg.groups(), cfg.a * cfg.h + 1);
        prop_assert_eq!(cfg.routers(), cfg.groups() * cfg.a);
        prop_assert_eq!(cfg.nodes(), cfg.routers() * cfg.p);
        prop_assert_eq!(cfg.fabric_ports(), cfg.radix() - cfg.p);
    }

    /// Every fabric link is symmetric: following a port and then the
    /// reported reverse port returns to the origin.
    #[test]
    fn links_are_symmetric(cfg in config_strategy(), rsel in 0usize..64, psel in 0usize..32) {
        let t = Dragonfly::new(cfg);
        let r = RouterId::from_index(rsel % t.num_routers());
        let ports: Vec<Port> = t.layout().fabric_port_iter().collect();
        let port = ports[psel % ports.len()];
        match t.neighbor(r, port) {
            Neighbor::Router { router, port: back } => {
                match t.neighbor(router, back) {
                    Neighbor::Router { router: r2, port: p2 } => {
                        prop_assert_eq!(r2, r);
                        prop_assert_eq!(p2, port);
                    }
                    _ => prop_assert!(false, "reverse of a fabric link was a node"),
                }
            }
            Neighbor::Node(_) => prop_assert!(false, "fabric port resolved to a node"),
        }
    }

    /// The minimal route between any two routers is within the diameter and
    /// crosses at most one global link.
    #[test]
    fn minimal_routes_within_diameter(cfg in config_strategy(), a in 0usize..4096, b in 0usize..4096) {
        let t = Dragonfly::new(cfg);
        let src = RouterId::from_index(a % t.num_routers());
        let dst = RouterId::from_index(b % t.num_routers());
        let kinds = t.minimal_hop_kinds(src, dst);
        prop_assert!(kinds.len() <= 3);
        let globals = kinds
            .iter()
            .filter(|k| matches!(k, dragonfly_topology::paths::HopKind::Global))
            .count();
        prop_assert!(globals <= 1);
        if t.group_of_router(src) != t.group_of_router(dst) {
            prop_assert_eq!(globals, 1);
        }
    }

    /// Every node belongs to exactly one router and the ejection port kind
    /// is always a host port.
    #[test]
    fn node_attachment(cfg in config_strategy(), n in 0usize..8192) {
        let t = Dragonfly::new(cfg);
        let node = NodeId::from_index(n % t.num_nodes());
        let router = t.router_of_node(node);
        prop_assert!(t.nodes_of_router(router).any(|x| x == node));
        prop_assert_eq!(t.port_kind(t.ejection_port(node)), PortKind::Host);
    }

    /// The gateway map is a bijection between "other groups" and
    /// (router, global port) pairs within each group.
    #[test]
    fn gateway_bijection(cfg in config_strategy(), gsel in 0usize..64) {
        let t = Dragonfly::new(cfg);
        let group = GroupId::from_index(gsel % t.num_groups());
        let mut seen = std::collections::HashSet::new();
        for other in t.groups() {
            if other == group { continue; }
            let (router, port) = t.gateway(group, other);
            prop_assert_eq!(t.group_of_router(router), group);
            prop_assert!(seen.insert((router, port)), "gateway reused a port");
            prop_assert_eq!(t.global_neighbor_group(router, port), other);
        }
        prop_assert_eq!(seen.len(), t.num_groups() - 1);
    }
}
