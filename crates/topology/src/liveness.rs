//! Per-port / per-router liveness: the fault-injection mask every
//! topology carries.
//!
//! A pristine fabric has an *empty* mask, and every query short-circuits
//! on one `is_empty` check, so fault support costs nothing on the hot
//! path of an un-faulted simulation. Killing a link marks **both**
//! endpoint ports down, so routing agents only ever need to query the
//! liveness of their *own* router's ports — which is what lets a sharded
//! engine keep one locally-updated mask per shard without any cross-shard
//! liveness protocol (see the `dragonfly-engine` crate docs).
//!
//! The mask is plain data (`BTreeSet`s), so it serialises, clones and
//! compares cheaply and deterministically.

use crate::ids::{Port, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The set of currently-dead ports and routers of one topology instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivenessMask {
    /// `(router index, port index)` pairs that are down.
    down_ports: BTreeSet<(u32, u16)>,
    /// Router indices that are down (drained / failed).
    down_routers: BTreeSet<u32>,
}

impl LivenessMask {
    /// A mask with everything up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether every port and router is up (the pristine-fabric fast
    /// path).
    #[inline]
    pub fn is_pristine(&self) -> bool {
        self.down_ports.is_empty() && self.down_routers.is_empty()
    }

    /// Whether `port` of `router` is up. Ports of a dead router count as
    /// down.
    #[inline]
    pub fn port_up(&self, router: RouterId, port: Port) -> bool {
        if self.is_pristine() {
            return true;
        }
        !self.down_routers.contains(&router.0) && !self.down_ports.contains(&(router.0, port.0))
    }

    /// Whether `router` is up.
    #[inline]
    pub fn router_up(&self, router: RouterId) -> bool {
        self.down_routers.is_empty() || !self.down_routers.contains(&router.0)
    }

    /// Mark one port down. Idempotent.
    pub fn set_port_down(&mut self, router: RouterId, port: Port) {
        self.down_ports.insert((router.0, port.0));
    }

    /// Mark one port up again. Idempotent.
    pub fn set_port_up(&mut self, router: RouterId, port: Port) {
        self.down_ports.remove(&(router.0, port.0));
    }

    /// Mark a whole router down. Idempotent.
    pub fn set_router_down(&mut self, router: RouterId) {
        self.down_routers.insert(router.0);
    }

    /// Mark a router up again. Idempotent.
    pub fn set_router_up(&mut self, router: RouterId) {
        self.down_routers.remove(&router.0);
    }

    /// Number of individually-dead ports (not counting dead routers).
    pub fn down_port_count(&self) -> usize {
        self.down_ports.len()
    }

    /// Number of dead routers.
    pub fn down_router_count(&self) -> usize {
        self.down_routers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_mask_reports_everything_up() {
        let m = LivenessMask::new();
        assert!(m.is_pristine());
        assert!(m.port_up(RouterId(3), Port(7)));
        assert!(m.router_up(RouterId(3)));
    }

    #[test]
    fn port_kill_and_restore_round_trip() {
        let mut m = LivenessMask::new();
        m.set_port_down(RouterId(1), Port(4));
        assert!(!m.port_up(RouterId(1), Port(4)));
        assert!(m.port_up(RouterId(1), Port(5)));
        assert!(m.port_up(RouterId(2), Port(4)));
        assert!(!m.is_pristine());
        m.set_port_up(RouterId(1), Port(4));
        assert!(m.is_pristine());
    }

    #[test]
    fn dead_router_takes_its_ports_down() {
        let mut m = LivenessMask::new();
        m.set_router_down(RouterId(9));
        assert!(!m.router_up(RouterId(9)));
        assert!(!m.port_up(RouterId(9), Port(0)));
        assert!(m.router_up(RouterId(8)));
        m.set_router_up(RouterId(9));
        assert!(m.port_up(RouterId(9), Port(0)));
    }

    #[test]
    fn mask_serialises_deterministically() {
        let mut m = LivenessMask::new();
        m.set_port_down(RouterId(2), Port(3));
        m.set_port_down(RouterId(1), Port(6));
        m.set_router_down(RouterId(5));
        let json = serde_json::to_string(&m).unwrap();
        let back: LivenessMask = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        // BTreeSet order makes the encoding canonical.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
