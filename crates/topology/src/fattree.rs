//! A three-level fat-tree (k-ary Clos) topology.
//!
//! The classic construction for an even arity `k`:
//!
//! * `k` **pods**, each with `k/2` edge switches and `k/2` aggregation
//!   switches;
//! * `(k/2)²` **core** switches; aggregation switch `j` of every pod
//!   connects to cores `[j·k/2, (j+1)·k/2)` (its "plane");
//! * every edge switch hosts `k/2` compute nodes → `k³/4` nodes total.
//!
//! All switches have radix `k`. Edge↔aggregation links are intra-pod
//! (**local** latency); aggregation↔core links span the spine
//! (**global** latency).
//!
//! ## Locality domains
//!
//! A domain is a pod plus a contiguous block of core switches assigned to
//! it (`cores/k` per pod, uneven remainders spread over the first pods).
//! Router ids are laid out domain-contiguously —
//! `[edges of pod p][aggs of pod p][core block p]` — so the sharding
//! contract of [`crate::traits::Topology`] holds: every link between
//! routers of different domains is an aggregation↔core link with global
//! latency, giving the conservative engine the same lookahead window as a
//! Dragonfly global link.

use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::paths::HopKind;
use crate::ports::PortKind;
use crate::topology::Neighbor;
use crate::traits::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a three-level k-ary fat-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FatTreeConfig {
    /// Switch arity `k` (even, ≥ 2). `k` pods, `k²/4` cores, `k³/4`
    /// hosts.
    pub k: usize,
}

impl FatTreeConfig {
    /// Validate the structural constraints with a friendly message.
    pub fn validate(&self) -> Result<(), String> {
        if self.k < 2 {
            return Err(format!(
                "fat-tree arity k must be at least 2 (got k = {})",
                self.k
            ));
        }
        if !self.k.is_multiple_of(2) {
            return Err(format!(
                "fat-tree arity k must be even so k/2 up-links pair with k/2 down-links \
                 (got k = {})",
                self.k
            ));
        }
        Ok(())
    }

    /// Half the arity: hosts per edge switch, switches per pod layer.
    pub fn half(&self) -> usize {
        self.k / 2
    }

    /// Number of pods (= locality domains).
    pub fn pods(&self) -> usize {
        self.k
    }

    /// Number of core switches.
    pub fn cores(&self) -> usize {
        self.half() * self.half()
    }

    /// Total switches: `k` pods × `k` switches + cores.
    pub fn routers(&self) -> usize {
        self.k * self.k + self.cores()
    }

    /// Total compute nodes, `k³/4`.
    pub fn nodes(&self) -> usize {
        self.k * self.half() * self.half()
    }

    /// A 16-node, 20-switch fat-tree (`k = 4`) for tests and tiny
    /// scenarios.
    pub fn tiny() -> Self {
        Self { k: 4 }
    }

    /// A 128-node, 80-switch fat-tree (`k = 8`).
    pub fn small() -> Self {
        Self { k: 8 }
    }
}

impl std::fmt::Display for FatTreeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FatTree(k={}, pods={}, cores={}, m={}, N={})",
            self.k,
            self.pods(),
            self.cores(),
            self.routers(),
            self.nodes()
        )
    }
}

/// What a fat-tree router id resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Switch {
    /// Edge switch `idx` (0..k/2) of `pod`.
    Edge { pod: usize, idx: usize },
    /// Aggregation switch `idx` (0..k/2) of `pod`.
    Agg { pod: usize, idx: usize },
    /// Core switch with global core index `core` (0..(k/2)²).
    Core { core: usize },
}

/// A fully wired three-level fat-tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    cfg: FatTreeConfig,
    /// Domain → first router id (length pods + 1).
    domain_start: Vec<usize>,
    /// Domain → first global core index of its core block (length
    /// pods + 1).
    core_block_start: Vec<usize>,
    /// Fault-injection mask; empty (everything up) on a fresh topology.
    liveness: crate::liveness::LivenessMask,
}

impl FatTree {
    /// Build the topology (the configuration must be valid).
    pub fn new(cfg: FatTreeConfig) -> Self {
        cfg.validate().expect("invalid fat-tree configuration");
        let pods = cfg.pods();
        let cores = cfg.cores();
        let mut core_block_start = Vec::with_capacity(pods + 1);
        for p in 0..=pods {
            core_block_start.push(p * cores / pods);
        }
        let mut domain_start = Vec::with_capacity(pods + 1);
        let mut next = 0usize;
        for p in 0..pods {
            domain_start.push(next);
            next += 2 * cfg.half() + (core_block_start[p + 1] - core_block_start[p]);
        }
        domain_start.push(next);
        debug_assert_eq!(next, cfg.routers());
        Self {
            cfg,
            domain_start,
            core_block_start,
            liveness: crate::liveness::LivenessMask::new(),
        }
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &FatTreeConfig {
        &self.cfg
    }

    /// Resolve a router id into its switch role.
    fn switch(&self, router: RouterId) -> Switch {
        let r = router.index();
        let pod = self.domain_start.partition_point(|s| *s <= r) - 1;
        let local = r - self.domain_start[pod];
        let half = self.cfg.half();
        if local < half {
            Switch::Edge { pod, idx: local }
        } else if local < 2 * half {
            Switch::Agg {
                pod,
                idx: local - half,
            }
        } else {
            Switch::Core {
                core: self.core_block_start[pod] + (local - 2 * half),
            }
        }
    }

    fn edge_router(&self, pod: usize, idx: usize) -> RouterId {
        RouterId::from_index(self.domain_start[pod] + idx)
    }

    fn agg_router(&self, pod: usize, idx: usize) -> RouterId {
        RouterId::from_index(self.domain_start[pod] + self.cfg.half() + idx)
    }

    fn core_router(&self, core: usize) -> RouterId {
        let owner = self.core_block_start.partition_point(|s| *s <= core) - 1;
        RouterId::from_index(
            self.domain_start[owner] + 2 * self.cfg.half() + (core - self.core_block_start[owner]),
        )
    }

    /// The aggregation "plane" a core belongs to: agg `j` of every pod
    /// connects to cores `[j·k/2, (j+1)·k/2)`.
    fn plane_of_core(&self, core: usize) -> usize {
        core / self.cfg.half()
    }

    /// Deterministic up-link spreading: hashes the destination router so
    /// equal-cost up paths are used evenly without any per-packet RNG.
    fn spread(&self, dest: RouterId) -> usize {
        dest.index() % self.cfg.half()
    }

    fn up_port(&self, slot: usize) -> Port {
        Port::from_index(self.cfg.half() + slot)
    }
}

impl Topology for FatTree {
    fn kind_name(&self) -> &'static str {
        "fattree"
    }

    fn liveness(&self) -> &crate::liveness::LivenessMask {
        &self.liveness
    }

    fn liveness_mut(&mut self) -> &mut crate::liveness::LivenessMask {
        &mut self.liveness
    }

    fn label(&self) -> String {
        self.cfg.to_string()
    }

    fn num_routers(&self) -> usize {
        self.cfg.routers()
    }

    fn num_nodes(&self) -> usize {
        self.cfg.nodes()
    }

    fn num_domains(&self) -> usize {
        self.cfg.pods()
    }

    fn max_nodes_per_router(&self) -> usize {
        self.cfg.half()
    }

    fn diameter(&self) -> usize {
        // Edge→edge across pods is 4 hops; agg/core endpoints of the
        // defensive total routing function add at most one more.
        6
    }

    fn radix(&self, _router: RouterId) -> usize {
        self.cfg.k
    }

    fn host_ports(&self, router: RouterId) -> usize {
        match self.switch(router) {
            Switch::Edge { .. } => self.cfg.half(),
            _ => 0,
        }
    }

    fn port_kind(&self, router: RouterId, port: Port) -> PortKind {
        let half = self.cfg.half();
        debug_assert!(port.index() < self.cfg.k);
        match self.switch(router) {
            Switch::Edge { .. } => {
                if port.index() < half {
                    PortKind::Host
                } else {
                    PortKind::Local
                }
            }
            Switch::Agg { .. } => {
                if port.index() < half {
                    PortKind::Local
                } else {
                    PortKind::Global
                }
            }
            Switch::Core { .. } => PortKind::Global,
        }
    }

    fn router_of_node(&self, node: NodeId) -> RouterId {
        let half = self.cfg.half();
        let per_pod = half * half;
        let pod = node.index() / per_pod;
        let idx = (node.index() % per_pod) / half;
        self.edge_router(pod, idx)
    }

    fn node_slot(&self, node: NodeId) -> usize {
        node.index() % self.cfg.half()
    }

    fn domain_of_router(&self, router: RouterId) -> GroupId {
        GroupId::from_index(self.domain_start.partition_point(|s| *s <= router.index()) - 1)
    }

    fn router_range_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        self.domain_start[domain]..self.domain_start[domain + 1]
    }

    fn node_range_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        let per_pod = self.cfg.half() * self.cfg.half();
        domain * per_pod..(domain + 1) * per_pod
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Neighbor {
        let half = self.cfg.half();
        let i = port.index();
        match self.switch(router) {
            Switch::Edge { pod, idx } => {
                if i < half {
                    // Host port `s` → node (pod, edge idx, slot s).
                    Neighbor::Node(NodeId::from_index(pod * half * half + idx * half + i))
                } else {
                    // Up port j → agg (pod, j), arriving at its down port
                    // `idx` (the edge's index names the agg's down slot).
                    let j = i - half;
                    Neighbor::Router {
                        router: self.agg_router(pod, j),
                        port: Port::from_index(idx),
                    }
                }
            }
            Switch::Agg { pod, idx } => {
                if i < half {
                    // Down port s → edge (pod, s), arriving at its up
                    // port `idx`.
                    Neighbor::Router {
                        router: self.edge_router(pod, i),
                        port: self.up_port(idx),
                    }
                } else {
                    // Up port u → core (idx·k/2 + u), arriving at the
                    // core's port `pod`.
                    let core = idx * half + (i - half);
                    Neighbor::Router {
                        router: self.core_router(core),
                        port: Port::from_index(pod),
                    }
                }
            }
            Switch::Core { core } => {
                // Port p → agg (p, plane), arriving at the agg's up port
                // `core % (k/2)`.
                let plane = self.plane_of_core(core);
                Neighbor::Router {
                    router: self.agg_router(i, plane),
                    port: self.up_port(core % half),
                }
            }
        }
    }

    fn minimal_port(&self, current: RouterId, dest: RouterId) -> Option<Port> {
        if current == dest {
            return None;
        }
        let half = self.cfg.half();
        let port = match (self.switch(current), self.switch(dest)) {
            (Switch::Edge { pod, .. }, Switch::Agg { pod: p2, idx: j2 }) if p2 == pod => {
                self.up_port(j2)
            }
            (Switch::Edge { .. }, Switch::Core { core }) => self.up_port(self.plane_of_core(core)),
            (Switch::Edge { .. }, Switch::Agg { idx: j2, .. }) => {
                // Other pod: rise through plane j2 — its cores connect to
                // agg j2 of every pod.
                self.up_port(j2)
            }
            (Switch::Edge { .. }, Switch::Edge { .. }) => {
                // Same or other pod: rise; the spreading hash picks among
                // the equal-cost planes.
                self.up_port(self.spread(dest))
            }
            (Switch::Agg { pod, .. }, Switch::Edge { pod: p2, idx: i2 }) if p2 == pod => {
                Port::from_index(i2)
            }
            (Switch::Agg { pod, .. }, Switch::Agg { pod: p2, .. }) if p2 == pod => {
                // Sibling agg: descend to an edge, which rises directly.
                Port::from_index(self.spread(dest))
            }
            (Switch::Agg { idx: j, .. }, Switch::Core { core }) => {
                if self.plane_of_core(core) == j {
                    self.up_port(core % half)
                } else {
                    // Wrong plane: descend to an edge, which rises
                    // through the right one.
                    Port::from_index(self.spread(dest))
                }
            }
            (Switch::Agg { idx: j, .. }, _) => {
                // Destination in another pod: rise to any core of this
                // plane — every core reaches every pod.
                let _ = j;
                self.up_port(self.spread(dest))
            }
            (Switch::Core { .. }, Switch::Edge { pod: p2, .. })
            | (Switch::Core { .. }, Switch::Agg { pod: p2, .. }) => Port::from_index(p2),
            (Switch::Core { .. }, Switch::Core { .. }) => {
                // Core-to-core (only defensive: no traffic terminates at
                // a core): descend anywhere, the pod re-routes upward.
                Port::from_index(dest.index() % self.cfg.k)
            }
        };
        Some(port)
    }

    fn estimate_hops_to_domain(&self, router: RouterId, domain: GroupId) -> Vec<HopKind> {
        let d = domain.index();
        match self.switch(router) {
            Switch::Edge { pod, .. } if pod == d => vec![HopKind::Local, HopKind::Local],
            Switch::Agg { pod, .. } if pod == d => vec![HopKind::Local],
            Switch::Core { .. } => vec![HopKind::Global, HopKind::Local],
            Switch::Edge { .. } => vec![
                HopKind::Local,
                HopKind::Global,
                HopKind::Global,
                HopKind::Local,
            ],
            Switch::Agg { .. } => vec![HopKind::Global, HopKind::Global, HopKind::Local],
        }
    }

    fn port_toward_domain(&self, router: RouterId, domain: GroupId) -> Port {
        debug_assert_ne!(self.domain_of_router(router), domain);
        match self.switch(router) {
            // Rise through a plane picked by the target domain so
            // different targets spread over the planes.
            Switch::Edge { .. } | Switch::Agg { .. } => {
                self.up_port(domain.index() % self.cfg.half())
            }
            // A core reaches every pod directly.
            Switch::Core { .. } => Port::from_index(domain.index()),
        }
    }

    fn direct_port_to_domain(&self, router: RouterId, domain: GroupId) -> Option<Port> {
        if self.domain_of_router(router) == domain {
            return None;
        }
        let half = self.cfg.half();
        match self.switch(router) {
            // Edge neighbours (aggs of the own pod) never reach another
            // domain in one hop.
            Switch::Edge { .. } => None,
            Switch::Agg { idx: j, .. } => {
                // An up-link reaches domain `d` iff its core lives in
                // `d`'s block.
                let block = self.core_block_start[domain.index()]
                    ..self.core_block_start[domain.index() + 1];
                (j * half..(j + 1) * half)
                    .find(|c| block.contains(c))
                    .map(|c| self.up_port(c % half))
            }
            Switch::Core { .. } => Some(Port::from_index(domain.index())),
        }
    }

    fn random_intermediate_router(
        &self,
        rng: &mut StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> RouterId {
        let domain = self.random_intermediate_domain(rng, src_domain, dst_domain);
        // A node-bearing (edge) switch, so minimal routing towards it is
        // an ordinary up/down path.
        self.edge_router(domain.index(), rng.gen_range(0..self.cfg.half()))
    }

    fn random_escape_port(&self, rng: &mut StdRng, router: RouterId) -> Port {
        let half = self.cfg.half();
        match self.switch(router) {
            // Intra-pod links: an edge's up ports, an agg's down ports.
            Switch::Edge { .. } => self.up_port(rng.gen_range(0..half)),
            Switch::Agg { .. } => Port::from_index(rng.gen_range(0..half)),
            // Cores have no intra-domain links; any port is an escape.
            Switch::Core { .. } => Port::from_index(rng.gen_range(0..self.cfg.k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FatTree {
        FatTree::new(FatTreeConfig::tiny()) // k = 4
    }

    #[test]
    fn tiny_counts_match_the_closed_forms() {
        let t = topo();
        assert_eq!(t.num_routers(), 20, "16 pod switches + 4 cores");
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_domains(), 4);
        assert_eq!(t.max_nodes_per_router(), 2);
        assert_eq!(FatTreeConfig::small().nodes(), 128);
    }

    #[test]
    fn validation_rejects_odd_and_tiny_arity() {
        assert!(FatTreeConfig { k: 3 }.validate().is_err());
        assert!(FatTreeConfig { k: 1 }.validate().is_err());
        assert!(FatTreeConfig { k: 0 }.validate().is_err());
        assert!(FatTreeConfig { k: 4 }.validate().is_ok());
    }

    #[test]
    fn domain_ranges_are_contiguous_and_cover_everything() {
        let t = topo();
        let mut next_router = 0;
        let mut next_node = 0;
        for d in 0..t.num_domains() {
            let rr = t.router_range_of_domain(d);
            assert_eq!(rr.start, next_router, "router contiguity");
            next_router = rr.end;
            for r in rr {
                assert_eq!(t.domain_of_router(RouterId::from_index(r)).index(), d);
            }
            let nr = t.node_range_of_domain(d);
            assert_eq!(nr.start, next_node, "node contiguity");
            next_node = nr.end;
            for n in nr {
                assert_eq!(t.domain_of_node(NodeId::from_index(n)).index(), d);
            }
        }
        assert_eq!(next_router, t.num_routers());
        assert_eq!(next_node, t.num_nodes());
    }

    #[test]
    fn links_are_symmetric() {
        let t = topo();
        for r in 0..t.num_routers() {
            let router = RouterId::from_index(r);
            for p in t.host_ports(router)..t.radix(router) {
                let port = Port::from_index(p);
                match t.neighbor(router, port) {
                    Neighbor::Router {
                        router: far,
                        port: far_port,
                    } => match t.neighbor(far, far_port) {
                        Neighbor::Router {
                            router: back,
                            port: back_port,
                        } => {
                            assert_eq!(back, router, "{router} port {port}");
                            assert_eq!(back_port, port);
                        }
                        Neighbor::Node(_) => panic!("fabric reverse resolved to a node"),
                    },
                    Neighbor::Node(_) => panic!("fabric port resolved to a node"),
                }
            }
        }
    }

    #[test]
    fn host_ports_map_to_attached_nodes_bijectively() {
        let t = topo();
        for n in 0..t.num_nodes() {
            let node = NodeId::from_index(n);
            let router = t.router_of_node(node);
            let port = t.ejection_port(node);
            assert_eq!(t.port_kind(router, port), PortKind::Host);
            assert_eq!(t.neighbor(router, port), Neighbor::Node(node));
        }
    }

    #[test]
    fn minimal_routes_reach_every_destination_within_the_diameter() {
        let t = topo();
        for src in 0..t.num_routers() {
            for dst in 0..t.num_routers() {
                let (src, dst) = (RouterId::from_index(src), RouterId::from_index(dst));
                let kinds = t.minimal_hop_kinds(src, dst);
                assert!(kinds.len() <= t.diameter(), "{src} -> {dst}: {kinds:?}");
                if src == dst {
                    assert!(kinds.is_empty());
                }
            }
        }
    }

    #[test]
    fn edge_to_edge_cross_pod_is_four_hops_through_the_core() {
        let t = topo();
        let src = t.router_of_node(NodeId(0));
        let dst = t.router_of_node(NodeId::from_index(t.num_nodes() - 1));
        let kinds = t.minimal_hop_kinds(src, dst);
        assert_eq!(
            kinds,
            vec![
                HopKind::Local,
                HopKind::Global,
                HopKind::Global,
                HopKind::Local
            ]
        );
    }

    #[test]
    fn cross_domain_links_are_always_global() {
        // The sharding contract: any link between routers of different
        // domains must carry the global (lookahead) latency.
        let t = topo();
        for r in 0..t.num_routers() {
            let router = RouterId::from_index(r);
            for p in t.host_ports(router)..t.radix(router) {
                let port = Port::from_index(p);
                let far = t.neighbor_router(router, port);
                if t.domain_of_router(far) != t.domain_of_router(router) {
                    assert_eq!(
                        t.port_kind(router, port),
                        PortKind::Global,
                        "cross-domain link {router} -> {far} must be global"
                    );
                }
            }
        }
    }

    #[test]
    fn direct_port_to_domain_lands_in_the_domain() {
        let t = topo();
        for r in 0..t.num_routers() {
            let router = RouterId::from_index(r);
            for d in 0..t.num_domains() {
                let domain = GroupId::from_index(d);
                if let Some(port) = t.direct_port_to_domain(router, domain) {
                    assert_ne!(t.domain_of_router(router), domain);
                    assert_eq!(t.domain_of_router(t.neighbor_router(router, port)), domain);
                }
            }
        }
    }

    #[test]
    fn port_toward_domain_converges() {
        let t = topo();
        for r in 0..t.num_routers() {
            for d in 0..t.num_domains() {
                let domain = GroupId::from_index(d);
                let mut current = RouterId::from_index(r);
                if t.domain_of_router(current) == domain {
                    continue;
                }
                let mut hops = 0;
                while t.domain_of_router(current) != domain {
                    current = t.neighbor_router(current, t.port_toward_domain(current, domain));
                    hops += 1;
                    assert!(hops <= t.diameter(), "toward-domain walk looped");
                }
            }
        }
    }

    #[test]
    fn intermediate_routers_bear_nodes_and_avoid_endpoints() {
        use rand::SeedableRng;
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let ir = t.random_intermediate_router(&mut rng, GroupId(0), GroupId(1));
            let d = t.domain_of_router(ir);
            assert_ne!(d, GroupId(0));
            assert_ne!(d, GroupId(1));
            assert!(t.host_ports(ir) > 0, "intermediate must bear nodes");
        }
    }
}
