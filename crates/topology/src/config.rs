//! Dragonfly configuration parameters.
//!
//! The paper (Table 1) parameterises a Dragonfly by three numbers:
//!
//! * `p` — compute nodes per router,
//! * `a` — routers per group,
//! * `h` — global links per router,
//!
//! from which everything else follows:
//!
//! * router radix `k = p + h + a - 1`,
//! * number of groups `g = a * h + 1` (one global link between every pair
//!   of groups),
//! * routers in the system `m = g * a`,
//! * compute nodes in the system `N = m * p`.

use serde::{Deserialize, Serialize};

/// Error returned when a Dragonfly configuration is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// One of `p`, `a`, `h` was zero.
    ZeroParameter,
    /// A group must contain at least two routers so that local ports exist.
    TooFewRoutersPerGroup,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroParameter => {
                write!(f, "p, a and h must all be at least 1")
            }
            ConfigError::TooFewRoutersPerGroup => {
                write!(f, "a dragonfly group needs at least 2 routers (a >= 2)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The `(p, a, h)` parameterisation of a fully connected Dragonfly.
///
/// The two systems evaluated in the paper are available as
/// [`DragonflyConfig::paper_1056`] and [`DragonflyConfig::paper_2550`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DragonflyConfig {
    /// Compute nodes attached to each router.
    pub p: usize,
    /// Routers per group.
    pub a: usize,
    /// Global links per router.
    pub h: usize,
}

impl DragonflyConfig {
    /// Create a configuration, validating the structural constraints.
    pub fn new(p: usize, a: usize, h: usize) -> Result<Self, ConfigError> {
        if p == 0 || a == 0 || h == 0 {
            return Err(ConfigError::ZeroParameter);
        }
        if a < 2 {
            return Err(ConfigError::TooFewRoutersPerGroup);
        }
        Ok(Self { p, a, h })
    }

    /// The 1,056-node system of the paper: `p=4, a=8, h=4` → 33 groups,
    /// 264 routers.
    pub fn paper_1056() -> Self {
        Self { p: 4, a: 8, h: 4 }
    }

    /// The 2,550-node system of the paper: `p=5, a=10, h=5` → 51 groups,
    /// 510 routers.
    pub fn paper_2550() -> Self {
        Self { p: 5, a: 10, h: 5 }
    }

    /// A tiny system (`p=2, a=4, h=2` → 9 groups, 36 routers, 72 nodes)
    /// convenient for unit tests and examples.
    pub fn tiny() -> Self {
        Self { p: 2, a: 4, h: 2 }
    }

    /// A small-but-not-tiny system (`p=3, a=6, h=3` → 19 groups,
    /// 114 routers, 342 nodes) used in integration tests where a bit of
    /// path diversity matters.
    pub fn small() -> Self {
        Self { p: 3, a: 6, h: 3 }
    }

    /// Whether the configuration is "balanced" in the sense of Kim et al.:
    /// `a = 2p = 2h`. Both paper systems are balanced.
    pub fn is_balanced(&self) -> bool {
        self.a == 2 * self.p && self.a == 2 * self.h
    }

    /// Router radix `k = p + h + a - 1`.
    pub fn radix(&self) -> usize {
        self.p + self.h + self.a - 1
    }

    /// Number of groups `g = a*h + 1`.
    pub fn groups(&self) -> usize {
        self.a * self.h + 1
    }

    /// Routers in the whole system, `m = g * a`.
    pub fn routers(&self) -> usize {
        self.groups() * self.a
    }

    /// Compute nodes in the whole system, `N = m * p`.
    pub fn nodes(&self) -> usize {
        self.routers() * self.p
    }

    /// Number of local ports per router (`a - 1`).
    pub fn local_ports(&self) -> usize {
        self.a - 1
    }

    /// Number of non-host ports per router (`k - p = a - 1 + h`), i.e. the
    /// number of columns of a Q-table.
    pub fn fabric_ports(&self) -> usize {
        self.local_ports() + self.h
    }

    /// Number of global links in the whole system (each counted once).
    pub fn global_links(&self) -> usize {
        self.groups() * (self.groups() - 1) / 2
    }

    /// Number of local (intra-group) links in the whole system
    /// (each counted once).
    pub fn local_links(&self) -> usize {
        self.groups() * self.a * (self.a - 1) / 2
    }
}

impl Default for DragonflyConfig {
    fn default() -> Self {
        Self::paper_1056()
    }
}

impl std::fmt::Display for DragonflyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dragonfly(p={}, a={}, h={}, k={}, g={}, m={}, N={})",
            self.p,
            self.a,
            self.h,
            self.radix(),
            self.groups(),
            self.routers(),
            self.nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_1056_matches_table1() {
        let c = DragonflyConfig::paper_1056();
        assert_eq!(c.p, 4);
        assert_eq!(c.a, 8);
        assert_eq!(c.h, 4);
        assert_eq!(c.radix(), 15);
        assert_eq!(c.groups(), 33);
        assert_eq!(c.routers(), 264);
        assert_eq!(c.nodes(), 1056);
        assert!(c.is_balanced());
    }

    #[test]
    fn paper_2550_matches_table1() {
        let c = DragonflyConfig::paper_2550();
        assert_eq!(c.p, 5);
        assert_eq!(c.a, 10);
        assert_eq!(c.h, 5);
        assert_eq!(c.radix(), 19);
        assert_eq!(c.groups(), 51);
        assert_eq!(c.routers(), 510);
        assert_eq!(c.nodes(), 2550);
        assert!(c.is_balanced());
    }

    #[test]
    fn tiny_is_balanced_and_small() {
        let c = DragonflyConfig::tiny();
        assert!(c.is_balanced());
        assert_eq!(c.groups(), 9);
        assert_eq!(c.routers(), 36);
        assert_eq!(c.nodes(), 72);
        assert_eq!(c.fabric_ports(), 5);
    }

    #[test]
    fn zero_parameters_rejected() {
        assert_eq!(
            DragonflyConfig::new(0, 4, 2).unwrap_err(),
            ConfigError::ZeroParameter
        );
        assert_eq!(
            DragonflyConfig::new(2, 0, 2).unwrap_err(),
            ConfigError::ZeroParameter
        );
        assert_eq!(
            DragonflyConfig::new(2, 4, 0).unwrap_err(),
            ConfigError::ZeroParameter
        );
    }

    #[test]
    fn single_router_group_rejected() {
        assert_eq!(
            DragonflyConfig::new(2, 1, 2).unwrap_err(),
            ConfigError::TooFewRoutersPerGroup
        );
    }

    #[test]
    fn unbalanced_config_allowed_but_flagged() {
        let c = DragonflyConfig::new(2, 4, 3).unwrap();
        assert!(!c.is_balanced());
        assert_eq!(c.groups(), 13);
    }

    #[test]
    fn link_counts_consistent() {
        let c = DragonflyConfig::paper_1056();
        // Each group has a*h = g-1 outgoing global link endpoints; every
        // link has two endpoints.
        assert_eq!(c.global_links() * 2, c.groups() * (c.groups() - 1));
        // Each group is a clique of `a` routers.
        assert_eq!(c.local_links(), 33 * (8 * 7 / 2));
    }

    #[test]
    fn display_is_informative() {
        let s = DragonflyConfig::paper_1056().to_string();
        assert!(s.contains("N=1056"));
        assert!(s.contains("g=33"));
    }
}
