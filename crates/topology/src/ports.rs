//! Router port layout and classification.
//!
//! Every router has radix `k = p + (a-1) + h`. Ports are laid out in three
//! contiguous ranges:
//!
//! * **host ports** `[0, p)` — one per attached compute node;
//! * **local ports** `[p, p + a - 1)` — one per other router in the same
//!   group (all-to-all intra-group);
//! * **global ports** `[p + a - 1, k)` — `h` links to other groups.
//!
//! The Q-tables of the paper only cover the `k - p` non-host ports (a packet
//! is never *routed* to a host port except for final ejection), so this
//! module also provides the mapping between a fabric port and its "column"
//! index in a Q-table.

use crate::config::DragonflyConfig;
use crate::ids::Port;
use serde::{Deserialize, Serialize};

/// The role a port plays in the topology hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Connects the router to one of its `p` compute nodes.
    Host,
    /// Connects the router to another router in the same group.
    Local,
    /// Connects the router to a router in another group.
    Global,
}

/// Port layout helper derived from a [`DragonflyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortLayout {
    p: usize,
    a: usize,
    h: usize,
}

impl PortLayout {
    /// Build the layout for a configuration.
    pub fn new(cfg: &DragonflyConfig) -> Self {
        Self {
            p: cfg.p,
            a: cfg.a,
            h: cfg.h,
        }
    }

    /// Router radix `k`.
    #[inline]
    pub fn radix(&self) -> usize {
        self.p + self.a - 1 + self.h
    }

    /// Number of non-host ("fabric") ports, `k - p`.
    #[inline]
    pub fn fabric_ports(&self) -> usize {
        self.a - 1 + self.h
    }

    /// Classify a port.
    #[inline]
    pub fn kind(&self, port: Port) -> PortKind {
        let i = port.index();
        if i < self.p {
            PortKind::Host
        } else if i < self.p + self.a - 1 {
            PortKind::Local
        } else {
            debug_assert!(i < self.radix(), "port {} out of range", i);
            PortKind::Global
        }
    }

    /// The host port attached to the `slot`-th node of a router
    /// (`slot` in `0..p`).
    #[inline]
    pub fn host_port(&self, slot: usize) -> Port {
        debug_assert!(slot < self.p);
        Port::from_index(slot)
    }

    /// The `l`-th local port (`l` in `0..a-1`).
    #[inline]
    pub fn local_port(&self, l: usize) -> Port {
        debug_assert!(l < self.a - 1);
        Port::from_index(self.p + l)
    }

    /// The `j`-th global port (`j` in `0..h`).
    #[inline]
    pub fn global_port(&self, j: usize) -> Port {
        debug_assert!(j < self.h);
        Port::from_index(self.p + self.a - 1 + j)
    }

    /// Inverse of [`PortLayout::local_port`]: local slot of a local port.
    #[inline]
    pub fn local_slot(&self, port: Port) -> usize {
        debug_assert_eq!(self.kind(port), PortKind::Local);
        port.index() - self.p
    }

    /// Inverse of [`PortLayout::global_port`]: global slot of a global port.
    #[inline]
    pub fn global_slot(&self, port: Port) -> usize {
        debug_assert_eq!(self.kind(port), PortKind::Global);
        port.index() - self.p - (self.a - 1)
    }

    /// Column index of a fabric (non-host) port in a Q-table
    /// (`0..k-p`). Host ports have no column.
    #[inline]
    pub fn qtable_column(&self, port: Port) -> Option<usize> {
        if self.kind(port) == PortKind::Host {
            None
        } else {
            Some(port.index() - self.p)
        }
    }

    /// The fabric port for a Q-table column index.
    #[inline]
    pub fn port_for_column(&self, column: usize) -> Port {
        debug_assert!(column < self.fabric_ports());
        Port::from_index(self.p + column)
    }

    /// Iterator over all host ports.
    pub fn host_ports(&self) -> impl Iterator<Item = Port> {
        (0..self.p).map(Port::from_index)
    }

    /// Iterator over all local ports.
    pub fn local_ports(&self) -> impl Iterator<Item = Port> + '_ {
        (0..self.a - 1).map(|l| self.local_port(l))
    }

    /// Iterator over all global ports.
    pub fn global_ports(&self) -> impl Iterator<Item = Port> + '_ {
        (0..self.h).map(|j| self.global_port(j))
    }

    /// Iterator over all non-host ports (local then global).
    pub fn fabric_port_iter(&self) -> impl Iterator<Item = Port> + '_ {
        (self.p..self.radix()).map(Port::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> PortLayout {
        PortLayout::new(&DragonflyConfig::paper_1056())
    }

    #[test]
    fn ranges_partition_the_radix() {
        let l = layout();
        assert_eq!(l.radix(), 15);
        let hosts: Vec<_> = l.host_ports().collect();
        let locals: Vec<_> = l.local_ports().collect();
        let globals: Vec<_> = l.global_ports().collect();
        assert_eq!(hosts.len(), 4);
        assert_eq!(locals.len(), 7);
        assert_eq!(globals.len(), 4);
        assert_eq!(hosts.len() + locals.len() + globals.len(), l.radix());
        for p in hosts {
            assert_eq!(l.kind(p), PortKind::Host);
        }
        for p in locals {
            assert_eq!(l.kind(p), PortKind::Local);
        }
        for p in globals {
            assert_eq!(l.kind(p), PortKind::Global);
        }
    }

    #[test]
    fn qtable_columns_cover_fabric_ports() {
        let l = layout();
        assert_eq!(l.qtable_column(Port(0)), None);
        assert_eq!(l.qtable_column(Port(4)), Some(0));
        assert_eq!(l.qtable_column(Port(14)), Some(10));
        for (i, port) in l.fabric_port_iter().enumerate() {
            assert_eq!(l.qtable_column(port), Some(i));
            assert_eq!(l.port_for_column(i), port);
        }
        assert_eq!(l.fabric_ports(), 11);
    }

    #[test]
    fn slot_inverses() {
        let l = layout();
        for j in 0..4 {
            assert_eq!(l.global_slot(l.global_port(j)), j);
        }
        for s in 0..7 {
            assert_eq!(l.local_slot(l.local_port(s)), s);
        }
        for s in 0..4 {
            assert_eq!(l.host_port(s).index(), s);
        }
    }

    #[test]
    fn fabric_iter_matches_counts() {
        let l = PortLayout::new(&DragonflyConfig::tiny());
        assert_eq!(l.fabric_port_iter().count(), l.fabric_ports());
        assert_eq!(l.fabric_ports(), 5);
    }
}
