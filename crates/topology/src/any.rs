//! [`AnyTopology`] — the concrete topology value the engine and the
//! routing algorithms carry around.
//!
//! An enum (rather than `Box<dyn Topology>`) keeps the hot-path queries
//! (`neighbor`, `port_kind`, `minimal_port`) free of virtual dispatch and
//! keeps the type `Clone` for per-shard copies. Adding a topology means
//! adding a variant here and a `TopologySpec` variant in
//! [`crate::spec`] — nothing in the engine changes.

use crate::fattree::FatTree;
use crate::hyperx::HyperX;
use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::paths::HopKind;
use crate::ports::PortKind;
use crate::topology::{Dragonfly, Neighbor};
use crate::traits::Topology;
use rand::rngs::StdRng;
use std::ops::Range;

/// One of the shipped topology implementations, dispatching the
/// [`Topology`] trait statically.
#[derive(Debug, Clone)]
pub enum AnyTopology {
    /// The paper's Dragonfly (groups = domains).
    Dragonfly(Dragonfly),
    /// A three-level fat-tree (pods = domains).
    FatTree(FatTree),
    /// A 2-D HyperX / flattened butterfly (rows = domains).
    HyperX(HyperX),
}

impl From<Dragonfly> for AnyTopology {
    fn from(t: Dragonfly) -> Self {
        AnyTopology::Dragonfly(t)
    }
}

impl From<FatTree> for AnyTopology {
    fn from(t: FatTree) -> Self {
        AnyTopology::FatTree(t)
    }
}

impl From<HyperX> for AnyTopology {
    fn from(t: HyperX) -> Self {
        AnyTopology::HyperX(t)
    }
}

impl AnyTopology {
    /// The Dragonfly inside, if this is one (some analyses are
    /// Dragonfly-specific).
    pub fn as_dragonfly(&self) -> Option<&Dragonfly> {
        match self {
            AnyTopology::Dragonfly(t) => Some(t),
            _ => None,
        }
    }

    /// Iterator over all router ids.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.num_routers()).map(RouterId::from_index)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Iterator over all domain ids.
    pub fn domains(&self) -> impl Iterator<Item = GroupId> {
        (0..self.num_domains()).map(GroupId::from_index)
    }
}

/// Delegate every trait method to the active variant.
macro_rules! delegate {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyTopology::Dragonfly($t) => $body,
            AnyTopology::FatTree($t) => $body,
            AnyTopology::HyperX($t) => $body,
        }
    };
}

impl Topology for AnyTopology {
    fn kind_name(&self) -> &'static str {
        delegate!(self, t => t.kind_name())
    }

    fn label(&self) -> String {
        delegate!(self, t => t.label())
    }

    fn num_routers(&self) -> usize {
        delegate!(self, t => Topology::num_routers(t))
    }

    fn num_nodes(&self) -> usize {
        delegate!(self, t => Topology::num_nodes(t))
    }

    fn num_domains(&self) -> usize {
        delegate!(self, t => t.num_domains())
    }

    fn max_nodes_per_router(&self) -> usize {
        delegate!(self, t => t.max_nodes_per_router())
    }

    fn diameter(&self) -> usize {
        delegate!(self, t => t.diameter())
    }

    fn liveness(&self) -> &crate::liveness::LivenessMask {
        delegate!(self, t => Topology::liveness(t))
    }

    fn liveness_mut(&mut self) -> &mut crate::liveness::LivenessMask {
        delegate!(self, t => Topology::liveness_mut(t))
    }

    fn port_up(&self, router: RouterId, port: Port) -> bool {
        delegate!(self, t => Topology::port_up(t, router, port))
    }

    fn router_up(&self, router: RouterId) -> bool {
        delegate!(self, t => Topology::router_up(t, router))
    }

    fn radix(&self, router: RouterId) -> usize {
        delegate!(self, t => Topology::radix(t, router))
    }

    fn host_ports(&self, router: RouterId) -> usize {
        delegate!(self, t => t.host_ports(router))
    }

    fn port_kind(&self, router: RouterId, port: Port) -> PortKind {
        delegate!(self, t => Topology::port_kind(t, router, port))
    }

    fn fabric_ports(&self, router: RouterId) -> usize {
        delegate!(self, t => Topology::fabric_ports(t, router))
    }

    fn qtable_column(&self, router: RouterId, port: Port) -> Option<usize> {
        delegate!(self, t => Topology::qtable_column(t, router, port))
    }

    fn port_for_column(&self, router: RouterId, column: usize) -> Port {
        delegate!(self, t => Topology::port_for_column(t, router, column))
    }

    fn exploration_ports(&self, router: RouterId, exclude: Option<Port>) -> Vec<Port> {
        delegate!(self, t => Topology::exploration_ports(t, router, exclude))
    }

    fn router_of_node(&self, node: NodeId) -> RouterId {
        delegate!(self, t => Topology::router_of_node(t, node))
    }

    fn node_slot(&self, node: NodeId) -> usize {
        delegate!(self, t => Topology::node_slot(t, node))
    }

    fn ejection_port(&self, node: NodeId) -> Port {
        delegate!(self, t => Topology::ejection_port(t, node))
    }

    fn domain_of_router(&self, router: RouterId) -> GroupId {
        delegate!(self, t => t.domain_of_router(router))
    }

    fn router_range_of_domain(&self, domain: usize) -> Range<usize> {
        delegate!(self, t => t.router_range_of_domain(domain))
    }

    fn node_range_of_domain(&self, domain: usize) -> Range<usize> {
        delegate!(self, t => t.node_range_of_domain(domain))
    }

    fn min_cross_domain_latency(&self, local_ns: u64, global_ns: u64) -> u64 {
        delegate!(self, t => t.min_cross_domain_latency(local_ns, global_ns))
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Neighbor {
        delegate!(self, t => Topology::neighbor(t, router, port))
    }

    fn neighbor_router(&self, router: RouterId, port: Port) -> RouterId {
        delegate!(self, t => Topology::neighbor_router(t, router, port))
    }

    fn minimal_port(&self, current: RouterId, dest: RouterId) -> Option<Port> {
        delegate!(self, t => Topology::minimal_port(t, current, dest))
    }

    fn minimal_port_to_node(&self, current: RouterId, dest_node: NodeId) -> Port {
        delegate!(self, t => Topology::minimal_port_to_node(t, current, dest_node))
    }

    fn minimal_hop_kinds(&self, src: RouterId, dst: RouterId) -> Vec<HopKind> {
        delegate!(self, t => Topology::minimal_hop_kinds(t, src, dst))
    }

    fn minimal_hops(&self, src: RouterId, dst: RouterId) -> usize {
        delegate!(self, t => Topology::minimal_hops(t, src, dst))
    }

    fn estimate_hops_to_domain(&self, router: RouterId, domain: GroupId) -> Vec<HopKind> {
        delegate!(self, t => t.estimate_hops_to_domain(router, domain))
    }

    fn port_toward_domain(&self, router: RouterId, domain: GroupId) -> Port {
        delegate!(self, t => t.port_toward_domain(router, domain))
    }

    fn direct_port_to_domain(&self, router: RouterId, domain: GroupId) -> Option<Port> {
        delegate!(self, t => t.direct_port_to_domain(router, domain))
    }

    fn random_intermediate_domain(
        &self,
        rng: &mut StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> GroupId {
        delegate!(self, t => t.random_intermediate_domain(rng, src_domain, dst_domain))
    }

    fn random_intermediate_router(
        &self,
        rng: &mut StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> RouterId {
        delegate!(self, t => Topology::random_intermediate_router(t, rng, src_domain, dst_domain))
    }

    fn random_escape_port(&self, rng: &mut StdRng, router: RouterId) -> Port {
        delegate!(self, t => t.random_escape_port(rng, router))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use crate::fattree::FatTreeConfig;
    use crate::hyperx::HyperXConfig;
    use rand::SeedableRng;

    fn all_tiny() -> Vec<AnyTopology> {
        vec![
            Dragonfly::new(DragonflyConfig::tiny()).into(),
            FatTree::new(FatTreeConfig::tiny()).into(),
            HyperX::new(HyperXConfig::tiny()).into(),
        ]
    }

    #[test]
    fn delegation_agrees_with_the_dragonfly_inherent_api() {
        let df = Dragonfly::new(DragonflyConfig::tiny());
        let any: AnyTopology = df.clone().into();
        assert_eq!(any.num_routers(), df.num_routers());
        assert_eq!(any.num_domains(), df.num_groups());
        for r in df.routers() {
            assert_eq!(any.domain_of_router(r), df.group_of_router(r));
            for dst in df.routers() {
                assert_eq!(any.minimal_port(r, dst), df.minimal_port(r, dst));
            }
        }
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(
                any.random_intermediate_domain(&mut a, GroupId(0), GroupId(3)),
                df.random_intermediate_group(&mut b, GroupId(0), GroupId(3)),
                "trait dispatch must consume the RNG identically"
            );
        }
    }

    #[test]
    fn every_topology_satisfies_the_domain_contract() {
        for topo in all_tiny() {
            // Ranges tile the router and node id spaces in order.
            let (mut next_r, mut next_n) = (0, 0);
            for d in 0..topo.num_domains() {
                let rr = topo.router_range_of_domain(d);
                let nr = topo.node_range_of_domain(d);
                assert_eq!(rr.start, next_r, "{}", topo.kind_name());
                assert_eq!(nr.start, next_n, "{}", topo.kind_name());
                next_r = rr.end;
                next_n = nr.end;
            }
            assert_eq!(next_r, topo.num_routers());
            assert_eq!(next_n, topo.num_nodes());
            // A node and its router share a domain; slots are in range.
            for node in topo.nodes() {
                let router = topo.router_of_node(node);
                assert_eq!(topo.domain_of_node(node), topo.domain_of_router(router));
                assert!(topo.node_slot(node) < topo.max_nodes_per_router());
                assert_eq!(
                    topo.neighbor(router, topo.ejection_port(node)),
                    Neighbor::Node(node)
                );
            }
            // Cross-domain links always carry the lookahead latency.
            for router in topo.routers() {
                for p in topo.host_ports(router)..topo.radix(router) {
                    let port = Port::from_index(p);
                    let far = topo.neighbor_router(router, port);
                    if topo.domain_of_router(far) != topo.domain_of_router(router) {
                        assert_eq!(topo.port_kind(router, port), PortKind::Global);
                    }
                }
            }
            assert_eq!(topo.min_cross_domain_latency(30, 300), 300);
        }
    }

    #[test]
    fn liveness_mask_threads_through_every_variant() {
        for mut topo in all_tiny() {
            let r = RouterId(0);
            let port = Port::from_index(topo.host_ports(r)); // first fabric port
            assert!(topo.port_up(r, port));
            assert!(topo.router_up(r));
            topo.liveness_mut().set_port_down(r, port);
            assert!(!topo.port_up(r, port), "{}", topo.kind_name());
            assert!(topo.router_up(r));
            topo.liveness_mut().set_router_down(RouterId(1));
            assert!(!topo.router_up(RouterId(1)), "{}", topo.kind_name());
            // A clone carries the mask; an independent build is pristine.
            let clone = topo.clone();
            assert!(!clone.port_up(r, port));
            topo.liveness_mut().set_port_up(r, port);
            topo.liveness_mut().set_router_up(RouterId(1));
            assert!(topo.liveness().is_pristine());
        }
    }

    #[test]
    fn minimal_routing_terminates_everywhere() {
        for topo in all_tiny() {
            for src in topo.routers() {
                for dst in topo.routers() {
                    let hops = topo.minimal_hops(src, dst);
                    assert!(
                        hops <= topo.diameter(),
                        "{}: {src}->{dst}",
                        topo.kind_name()
                    );
                }
            }
        }
    }
}
