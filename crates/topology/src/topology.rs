//! The Dragonfly wiring: which port connects to what.
//!
//! The topology uses the "absolute" global-link arrangement: within a group,
//! router with local index `r` owns the global links to the other-group
//! indices `r*h .. r*h + h` (other groups are numbered by skipping the
//! router's own group). Because `g = a*h + 1`, every group has exactly one
//! global link to every other group, and the mapping is symmetric: the link
//! between groups `G1` and `G2` connects the router in `G1` that owns `G2`
//! with the router in `G2` that owns `G1`.

use crate::config::DragonflyConfig;
use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::liveness::LivenessMask;
use crate::ports::{PortKind, PortLayout};
use serde::{Deserialize, Serialize};

/// What sits on the far side of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Neighbor {
    /// A compute node (host port).
    Node(NodeId),
    /// Another router; `port` is the input port on the far router that this
    /// link feeds (needed for credit accounting).
    Router { router: RouterId, port: Port },
}

/// A fully wired Dragonfly topology.
///
/// All queries are O(1) arithmetic; nothing is materialised besides the
/// configuration and the port layout, so cloning is cheap and a 10k-router
/// topology costs nothing to "build".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dragonfly {
    cfg: DragonflyConfig,
    layout: PortLayout,
    /// Fault-injection mask; empty (everything up) on a fresh topology.
    #[serde(default)]
    liveness: LivenessMask,
}

impl Dragonfly {
    /// Build the topology for a configuration.
    pub fn new(cfg: DragonflyConfig) -> Self {
        let layout = PortLayout::new(&cfg);
        Self {
            cfg,
            layout,
            liveness: LivenessMask::new(),
        }
    }

    /// The configuration this topology was built from.
    #[inline]
    pub fn config(&self) -> &DragonflyConfig {
        &self.cfg
    }

    /// The port layout helper.
    #[inline]
    pub fn layout(&self) -> &PortLayout {
        &self.layout
    }

    /// Number of routers in the system.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.cfg.routers()
    }

    /// Number of compute nodes in the system.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cfg.nodes()
    }

    /// Number of groups in the system.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.cfg.groups()
    }

    /// Router radix.
    #[inline]
    pub fn radix(&self) -> usize {
        self.layout.radix()
    }

    // ------------------------------------------------------------------
    // Entity relationships
    // ------------------------------------------------------------------

    /// The router a node is attached to.
    #[inline]
    pub fn router_of_node(&self, node: NodeId) -> RouterId {
        RouterId::from_index(node.index() / self.cfg.p)
    }

    /// The host-port slot (0..p) a node occupies on its router.
    #[inline]
    pub fn node_slot(&self, node: NodeId) -> usize {
        node.index() % self.cfg.p
    }

    /// The host port on `router_of_node(node)` that ejects to `node`.
    #[inline]
    pub fn ejection_port(&self, node: NodeId) -> Port {
        self.layout.host_port(self.node_slot(node))
    }

    /// The nodes attached to a router.
    pub fn nodes_of_router(&self, router: RouterId) -> impl Iterator<Item = NodeId> {
        let base = router.index() * self.cfg.p;
        (base..base + self.cfg.p).map(NodeId::from_index)
    }

    /// The group a router belongs to.
    #[inline]
    pub fn group_of_router(&self, router: RouterId) -> GroupId {
        GroupId::from_index(router.index() / self.cfg.a)
    }

    /// The group a node belongs to.
    #[inline]
    pub fn group_of_node(&self, node: NodeId) -> GroupId {
        self.group_of_router(self.router_of_node(node))
    }

    /// The local index (0..a) of a router within its group.
    #[inline]
    pub fn local_index(&self, router: RouterId) -> usize {
        router.index() % self.cfg.a
    }

    /// The router with a given local index inside a group.
    #[inline]
    pub fn router_in_group(&self, group: GroupId, local_index: usize) -> RouterId {
        debug_assert!(local_index < self.cfg.a);
        RouterId::from_index(group.index() * self.cfg.a + local_index)
    }

    /// Iterator over all routers of a group.
    pub fn routers_of_group(&self, group: GroupId) -> impl Iterator<Item = RouterId> {
        let base = group.index() * self.cfg.a;
        (base..base + self.cfg.a).map(RouterId::from_index)
    }

    /// Iterator over all routers in the system.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.num_routers()).map(RouterId::from_index)
    }

    /// Iterator over all nodes in the system.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Iterator over all groups in the system.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> {
        (0..self.num_groups()).map(GroupId::from_index)
    }

    // ------------------------------------------------------------------
    // Wiring
    // ------------------------------------------------------------------

    /// The local port on `router` that reaches `other` (same group,
    /// different router).
    pub fn local_port_to(&self, router: RouterId, other: RouterId) -> Port {
        debug_assert_eq!(self.group_of_router(router), self.group_of_router(other));
        debug_assert_ne!(router, other);
        let me = self.local_index(router);
        let them = self.local_index(other);
        // Skip-self numbering: slot l connects to local index l if l < me,
        // otherwise l + 1.
        let slot = if them < me { them } else { them - 1 };
        self.layout.local_port(slot)
    }

    /// The router reached by a local port.
    pub fn local_neighbor(&self, router: RouterId, port: Port) -> RouterId {
        debug_assert_eq!(self.layout.kind(port), PortKind::Local);
        let me = self.local_index(router);
        let slot = self.layout.local_slot(port);
        let them = if slot < me { slot } else { slot + 1 };
        self.router_in_group(self.group_of_router(router), them)
    }

    /// The destination group of a global port on a router.
    pub fn global_neighbor_group(&self, router: RouterId, port: Port) -> GroupId {
        debug_assert_eq!(self.layout.kind(port), PortKind::Global);
        let my_group = self.group_of_router(router).index();
        let slot = self.layout.global_slot(port);
        let other_index = self.local_index(router) * self.cfg.h + slot;
        // Other groups are numbered by skipping the router's own group.
        let target = if other_index < my_group {
            other_index
        } else {
            other_index + 1
        };
        GroupId::from_index(target)
    }

    /// The router within `group` that owns the (unique) global link towards
    /// `target_group`, along with the global port it uses.
    pub fn gateway(&self, group: GroupId, target_group: GroupId) -> (RouterId, Port) {
        debug_assert_ne!(group, target_group);
        let g = group.index();
        let t = target_group.index();
        let other_index = if t < g { t } else { t - 1 };
        let local_index = other_index / self.cfg.h;
        let slot = other_index % self.cfg.h;
        (
            self.router_in_group(group, local_index),
            self.layout.global_port(slot),
        )
    }

    /// If `router` has a direct global link to `target_group`, the global
    /// port that reaches it.
    pub fn global_port_to(&self, router: RouterId, target_group: GroupId) -> Option<Port> {
        let my_group = self.group_of_router(router);
        if my_group == target_group {
            return None;
        }
        let (gw, port) = self.gateway(my_group, target_group);
        (gw == router).then_some(port)
    }

    /// Full neighbour resolution: what does `port` of `router` connect to?
    pub fn neighbor(&self, router: RouterId, port: Port) -> Neighbor {
        match self.layout.kind(port) {
            PortKind::Host => {
                let node = NodeId::from_index(router.index() * self.cfg.p + port.index());
                Neighbor::Node(node)
            }
            PortKind::Local => {
                let other = self.local_neighbor(router, port);
                Neighbor::Router {
                    router: other,
                    port: self.local_port_to(other, router),
                }
            }
            PortKind::Global => {
                let target_group = self.global_neighbor_group(router, port);
                let my_group = self.group_of_router(router);
                let (remote, remote_port) = self.gateway(target_group, my_group);
                Neighbor::Router {
                    router: remote,
                    port: remote_port,
                }
            }
        }
    }

    /// The router on the far side of a fabric port (panics on host ports).
    pub fn neighbor_router(&self, router: RouterId, port: Port) -> RouterId {
        match self.neighbor(router, port) {
            Neighbor::Router { router, .. } => router,
            Neighbor::Node(_) => panic!("neighbor_router called on a host port"),
        }
    }

    /// Classify a port of any router (layout is identical for all routers).
    #[inline]
    pub fn port_kind(&self, port: Port) -> PortKind {
        self.layout.kind(port)
    }
}

/// The Dragonfly as a [`crate::traits::Topology`]: a locality domain is a
/// group, cross-domain links are exactly the global links, and every
/// routing primitive delegates to the O(1) arithmetic above — so routing
/// through the trait is bit-for-bit identical to the pre-trait code paths.
impl crate::traits::Topology for Dragonfly {
    fn kind_name(&self) -> &'static str {
        "dragonfly"
    }

    fn liveness(&self) -> &crate::liveness::LivenessMask {
        &self.liveness
    }

    fn liveness_mut(&mut self) -> &mut crate::liveness::LivenessMask {
        &mut self.liveness
    }

    fn label(&self) -> String {
        self.cfg.to_string()
    }

    fn num_routers(&self) -> usize {
        Dragonfly::num_routers(self)
    }

    fn num_nodes(&self) -> usize {
        Dragonfly::num_nodes(self)
    }

    fn num_domains(&self) -> usize {
        self.num_groups()
    }

    fn max_nodes_per_router(&self) -> usize {
        self.cfg.p
    }

    fn diameter(&self) -> usize {
        3
    }

    fn radix(&self, _router: RouterId) -> usize {
        self.layout.radix()
    }

    fn host_ports(&self, _router: RouterId) -> usize {
        self.cfg.p
    }

    fn port_kind(&self, _router: RouterId, port: Port) -> crate::ports::PortKind {
        self.layout.kind(port)
    }

    fn router_of_node(&self, node: NodeId) -> RouterId {
        Dragonfly::router_of_node(self, node)
    }

    fn node_slot(&self, node: NodeId) -> usize {
        Dragonfly::node_slot(self, node)
    }

    fn ejection_port(&self, node: NodeId) -> Port {
        Dragonfly::ejection_port(self, node)
    }

    fn domain_of_router(&self, router: RouterId) -> GroupId {
        self.group_of_router(router)
    }

    fn router_range_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        domain * self.cfg.a..(domain + 1) * self.cfg.a
    }

    fn node_range_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        let per_group = self.cfg.a * self.cfg.p;
        domain * per_group..(domain + 1) * per_group
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Neighbor {
        Dragonfly::neighbor(self, router, port)
    }

    fn neighbor_router(&self, router: RouterId, port: Port) -> RouterId {
        Dragonfly::neighbor_router(self, router, port)
    }

    fn minimal_port(&self, current: RouterId, dest: RouterId) -> Option<Port> {
        Dragonfly::minimal_port(self, current, dest)
    }

    fn minimal_hop_kinds(&self, src: RouterId, dst: RouterId) -> Vec<crate::paths::HopKind> {
        Dragonfly::minimal_hop_kinds(self, src, dst)
    }

    fn estimate_hops_to_domain(
        &self,
        router: RouterId,
        domain: GroupId,
    ) -> Vec<crate::paths::HopKind> {
        use crate::paths::HopKind;
        let my_group = self.group_of_router(router);
        let mut kinds = Vec::with_capacity(3);
        if my_group == domain {
            kinds.push(HopKind::Local);
        } else {
            let (gateway, _) = self.gateway(my_group, domain);
            if gateway != router {
                kinds.push(HopKind::Local);
            }
            kinds.push(HopKind::Global);
            kinds.push(HopKind::Local);
        }
        kinds
    }

    fn port_toward_domain(&self, router: RouterId, domain: GroupId) -> Port {
        debug_assert_ne!(self.group_of_router(router), domain);
        if let Some(direct) = self.global_port_to(router, domain) {
            return direct;
        }
        let (gateway, _) = self.gateway(self.group_of_router(router), domain);
        self.local_port_to(router, gateway)
    }

    fn direct_port_to_domain(&self, router: RouterId, domain: GroupId) -> Option<Port> {
        self.global_port_to(router, domain)
    }

    fn random_intermediate_domain(
        &self,
        rng: &mut rand::rngs::StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> GroupId {
        self.random_intermediate_group(rng, src_domain, dst_domain)
    }

    fn random_intermediate_router(
        &self,
        rng: &mut rand::rngs::StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> RouterId {
        Dragonfly::random_intermediate_router(self, rng, src_domain, dst_domain)
    }

    fn random_escape_port(&self, rng: &mut rand::rngs::StdRng, _router: RouterId) -> Port {
        self.random_local_port(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyConfig::tiny())
    }

    #[test]
    fn node_router_group_relationships() {
        let t = topo();
        // tiny: p=2, a=4, h=2, g=9
        assert_eq!(t.router_of_node(NodeId(0)), RouterId(0));
        assert_eq!(t.router_of_node(NodeId(1)), RouterId(0));
        assert_eq!(t.router_of_node(NodeId(2)), RouterId(1));
        assert_eq!(t.group_of_router(RouterId(0)), GroupId(0));
        assert_eq!(t.group_of_router(RouterId(4)), GroupId(1));
        assert_eq!(t.local_index(RouterId(5)), 1);
        assert_eq!(t.node_slot(NodeId(3)), 1);
        let nodes: Vec<_> = t.nodes_of_router(RouterId(3)).collect();
        assert_eq!(nodes, vec![NodeId(6), NodeId(7)]);
    }

    #[test]
    fn local_links_are_symmetric() {
        let t = topo();
        for g in t.groups() {
            for r1 in t.routers_of_group(g) {
                for r2 in t.routers_of_group(g) {
                    if r1 == r2 {
                        continue;
                    }
                    let p12 = t.local_port_to(r1, r2);
                    assert_eq!(t.local_neighbor(r1, p12), r2);
                    match t.neighbor(r1, p12) {
                        Neighbor::Router { router, port } => {
                            assert_eq!(router, r2);
                            assert_eq!(t.local_neighbor(r2, port), r1);
                        }
                        _ => panic!("local port resolved to a node"),
                    }
                }
            }
        }
    }

    #[test]
    fn every_group_pair_has_exactly_one_global_link() {
        let t = topo();
        let g = t.num_groups();
        let mut count = vec![vec![0usize; g]; g];
        for r in t.routers() {
            for port in t.layout().global_ports() {
                let dst = t.global_neighbor_group(r, port);
                let src = t.group_of_router(r);
                assert_ne!(src, dst, "global link must leave the group");
                count[src.index()][dst.index()] += 1;
            }
        }
        for (a, row) in count.iter().enumerate() {
            for (b, links) in row.iter().enumerate() {
                if a == b {
                    assert_eq!(*links, 0);
                } else {
                    assert_eq!(*links, 1, "groups {a} and {b}");
                }
            }
        }
    }

    #[test]
    fn global_links_are_symmetric() {
        let t = topo();
        for r in t.routers() {
            for port in t.layout().global_ports() {
                match t.neighbor(r, port) {
                    Neighbor::Router {
                        router: remote,
                        port: remote_port,
                    } => {
                        // The reverse link must come straight back.
                        match t.neighbor(remote, remote_port) {
                            Neighbor::Router { router, port } => {
                                assert_eq!(router, r);
                                assert_eq!(port, port);
                            }
                            _ => panic!("global reverse resolved to a node"),
                        }
                        assert_ne!(t.group_of_router(remote), t.group_of_router(r));
                    }
                    _ => panic!("global port resolved to a node"),
                }
            }
        }
    }

    #[test]
    fn gateway_agrees_with_global_ports() {
        let t = topo();
        for g1 in t.groups() {
            for g2 in t.groups() {
                if g1 == g2 {
                    continue;
                }
                let (gw, port) = t.gateway(g1, g2);
                assert_eq!(t.group_of_router(gw), g1);
                assert_eq!(t.global_neighbor_group(gw, port), g2);
                assert_eq!(t.global_port_to(gw, g2), Some(port));
            }
        }
    }

    #[test]
    fn host_ports_map_to_attached_nodes() {
        let t = topo();
        for r in t.routers() {
            for (slot, node) in t.nodes_of_router(r).enumerate() {
                let port = t.layout().host_port(slot);
                assert_eq!(t.neighbor(r, port), Neighbor::Node(node));
                assert_eq!(t.ejection_port(node), port);
            }
        }
    }

    #[test]
    fn paper_scale_topology_is_consistent() {
        let t = Dragonfly::new(DragonflyConfig::paper_1056());
        assert_eq!(t.num_routers(), 264);
        assert_eq!(t.num_nodes(), 1056);
        // Spot-check symmetry on the larger system.
        let r = RouterId(100);
        for port in t.layout().fabric_port_iter() {
            if let Neighbor::Router { router, port: back } = t.neighbor(r, port) {
                assert_eq!(t.neighbor_router(router, back), r);
            }
        }
    }
}
