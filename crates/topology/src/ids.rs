//! Strongly typed identifiers for topology entities.
//!
//! Using newtypes instead of raw `usize` prevents accidentally indexing a
//! router table with a node id (or vice versa), which is an easy mistake in
//! a simulator that juggles four different index spaces.

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index as a `usize`, for indexing into vectors.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(i as u32)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(i: usize) -> Self {
                Self::from_index(i)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_newtype!(
    /// A compute node. Node `n` attaches to router `n / p` on host port `n % p`.
    NodeId
);
id_newtype!(
    /// A router. Router `r` belongs to group `r / a` with local index `r % a`.
    RouterId
);
id_newtype!(
    /// A group of `a` routers.
    GroupId
);

/// A router port index in `0..k`.
///
/// Ports are laid out as: `[0, p)` host ports, `[p, p + a - 1)` local ports,
/// `[p + a - 1, k)` global ports (see [`crate::ports`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u16);

impl Port {
    /// The raw port index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(i as u16)
    }
}

impl From<usize> for Port {
    #[inline]
    fn from(i: usize) -> Self {
        Self::from_index(i)
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(NodeId::from_index(17).index(), 17);
        assert_eq!(RouterId::from_index(3).index(), 3);
        assert_eq!(GroupId::from_index(0).index(), 0);
        assert_eq!(Port::from_index(11).index(), 11);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(RouterId(1));
        set.insert(RouterId(2));
        set.insert(RouterId(1));
        assert_eq!(set.len(), 2);
        assert!(RouterId(1) < RouterId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(5).to_string(), "NodeId5");
        assert_eq!(Port(3).to_string(), "port3");
    }

    #[test]
    fn from_usize_conversions() {
        let n: NodeId = 42usize.into();
        assert_eq!(n, NodeId(42));
        let p: Port = 7usize.into();
        assert_eq!(p, Port(7));
    }
}
