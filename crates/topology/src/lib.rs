//! # dragonfly-topology
//!
//! A model of the Dragonfly interconnect topology used by the Q-adaptive
//! paper (Kim et al., ISCA'08 single-dimension Dragonfly with all-to-all
//! intra-group and all-to-all inter-group connectivity).
//!
//! The crate provides:
//!
//! * [`config::DragonflyConfig`] — the `(p, a, h)` parameterisation and the
//!   derived quantities of Table 1 of the paper (`k`, `g`, `m`, `N`).
//! * Strongly typed identifiers ([`ids::NodeId`], [`ids::RouterId`],
//!   [`ids::GroupId`], [`ids::Port`]) so that node, router and port indices
//!   cannot be confused.
//! * [`Dragonfly`] — the wiring: which port of which router connects to
//!   which node/router, the global-link map between groups, and helpers for
//!   minimal and Valiant routing.
//! * [`paths`] — minimal path computation (diameter 3), Valiant-global and
//!   Valiant-node intermediate selection, and hop-kind enumeration used to
//!   initialise Q-values to the theoretical congestion-free delivery time.
//!
//! The topology is purely combinatorial: it knows nothing about time,
//! buffers or congestion. Those live in `dragonfly-engine`.

pub mod config;
pub mod ids;
pub mod paths;
pub mod ports;
pub mod topology;

pub use config::DragonflyConfig;
pub use ids::{GroupId, NodeId, Port, RouterId};
pub use ports::PortKind;
pub use topology::{Dragonfly, Neighbor};
