//! # dragonfly-topology
//!
//! Interconnect topologies for the Q-adaptive simulator.
//!
//! The crate is built around the [`traits::Topology`] abstraction —
//! entity counts, per-router port maps, wiring ([`topology::Neighbor`]),
//! minimal/non-minimal routing primitives and the **locality-domain**
//! partition that drives conservative-parallel sharding — with three
//! shipped implementations:
//!
//! * [`Dragonfly`] — the paper's topology (Kim et al., ISCA'08
//!   single-dimension Dragonfly; a domain is a group). Its concrete API
//!   ([`config::DragonflyConfig`], [`paths`], [`ports::PortLayout`]) is
//!   unchanged, and routing through the trait is bit-for-bit identical
//!   to the pre-trait code paths.
//! * [`FatTree`] — a three-level k-ary fat-tree (a domain is a pod plus
//!   its slice of the core switches).
//! * [`HyperX`] — a 2-D HyperX / flattened butterfly (a domain is a row
//!   of the router grid).
//!
//! [`AnyTopology`] is the concrete enum the engine carries (static
//! dispatch, cheap clone); [`TopologySpec`] is the serialisable tag
//! experiment specs and scenario files use (`[topology.dragonfly]`,
//! `[topology.fattree]`, `[topology.hyperx]`, with the legacy bare
//! `[topology]` Dragonfly table still accepted).
//!
//! Topologies are purely combinatorial: they know nothing about time,
//! buffers or congestion. Those live in `dragonfly-engine`.

pub mod any;
pub mod config;
pub mod fattree;
pub mod hyperx;
pub mod ids;
pub mod liveness;
pub mod paths;
pub mod ports;
pub mod spec;
pub mod topology;
pub mod traits;

pub use any::AnyTopology;
pub use config::DragonflyConfig;
pub use fattree::{FatTree, FatTreeConfig};
pub use hyperx::{HyperX, HyperXConfig};
pub use ids::{GroupId, NodeId, Port, RouterId};
pub use liveness::LivenessMask;
pub use ports::PortKind;
pub use spec::{TopologyKindInfo, TopologySpec};
pub use topology::{Dragonfly, Neighbor};
pub use traits::Topology;
