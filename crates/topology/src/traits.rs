//! The topology abstraction: everything the engine, the routing
//! algorithms and the experiment harness need to know about *any*
//! interconnect fabric, expressed as one trait.
//!
//! A [`Topology`] describes
//!
//! * the entities — compute nodes, routers and their per-router port
//!   layouts (host ports first, then "fabric" ports);
//! * the wiring — [`Topology::neighbor`] resolves what sits on the far
//!   side of every port;
//! * minimal and non-minimal routing primitives — the unique (or
//!   canonical) minimal next hop, Valiant-style intermediate selection,
//!   and the hop-kind enumeration used to initialise Q-tables;
//! * a partition of the routers into **locality domains** — the unit of
//!   conservative-parallel sharding. For the Dragonfly a domain is a
//!   group, for a fat-tree a pod (plus its slice of the core), for a
//!   HyperX a row of the router grid.
//!
//! ## The locality-domain contract
//!
//! Domains generalise Dragonfly groups and carry three obligations the
//! engine's sharding relies on:
//!
//! 1. **Contiguity** — the routers of domain `d` occupy the contiguous
//!    id range [`Topology::router_range_of_domain`], and domain `d + 1`'s
//!    range starts where domain `d`'s ends (same for nodes). A shard can
//!    therefore own a contiguous run of domains with dense local arrays.
//! 2. **Host locality** — a node and its router are in the same domain.
//! 3. **Cross-domain lookahead** — every link between routers of
//!    *different* domains has latency at least
//!    [`Topology::min_cross_domain_latency`]. This is the conservative
//!    lookahead window: any message crossing a shard boundary (packet,
//!    credit, RL feedback) fires at least one window into the future.
//!
//! All three shipped topologies satisfy the contract by construction and
//! the cross-topology property tests in `tests/properties.rs` pin it.

use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::liveness::LivenessMask;
use crate::paths::HopKind;
use crate::ports::PortKind;
use crate::topology::Neighbor;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Upper bound on the hops of any minimal route of any shipped topology
/// (Dragonfly 3, HyperX 2, fat-tree 4 plus slack for agg/core endpoints).
/// The generic route walkers assert against it to catch routing loops.
pub const MAX_MINIMAL_HOPS: usize = 16;

/// A network topology: wiring, routing primitives and the locality-domain
/// partition used for sharding. See the module docs for the contract.
///
/// Identifier semantics are topology-generic: [`GroupId`] names a
/// *locality domain* (a Dragonfly group, a fat-tree pod, a HyperX row);
/// port indices are per-router with host ports first.
pub trait Topology: Send + Sync {
    // ------------------------------------------------------------------
    // Identity
    // ------------------------------------------------------------------

    /// Short kind name (`"dragonfly"`, `"fattree"`, `"hyperx"`).
    fn kind_name(&self) -> &'static str;

    /// One-line human-readable description with the key parameters.
    fn label(&self) -> String;

    // ------------------------------------------------------------------
    // Counts
    // ------------------------------------------------------------------

    /// Number of routers (switches) in the system.
    fn num_routers(&self) -> usize;

    /// Number of compute nodes in the system.
    fn num_nodes(&self) -> usize;

    /// Number of locality domains.
    fn num_domains(&self) -> usize;

    /// The maximum number of nodes attached to any router — the range of
    /// a packet's `src_slot` and the second row index of two-level
    /// Q-tables.
    fn max_nodes_per_router(&self) -> usize;

    /// An upper bound on the router-to-router hops of a minimal route.
    fn diameter(&self) -> usize;

    // ------------------------------------------------------------------
    // Per-router port layout (host ports first, then fabric ports)
    // ------------------------------------------------------------------

    /// Number of ports of `router`.
    fn radix(&self, router: RouterId) -> usize;

    /// Number of host (node-facing) ports of `router`. Host ports occupy
    /// indices `[0, host_ports)`; fabric ports follow.
    fn host_ports(&self, router: RouterId) -> usize;

    /// Classify a port of `router`.
    fn port_kind(&self, router: RouterId, port: Port) -> PortKind;

    /// Number of fabric (non-host) ports of `router` — the number of
    /// columns of its Q-tables.
    fn fabric_ports(&self, router: RouterId) -> usize {
        self.radix(router) - self.host_ports(router)
    }

    /// Q-table column of a fabric port of `router` (`None` for host
    /// ports).
    fn qtable_column(&self, router: RouterId, port: Port) -> Option<usize> {
        let offset = self.host_ports(router);
        (port.index() >= offset).then(|| port.index() - offset)
    }

    /// The fabric port of `router` for a Q-table column index.
    fn port_for_column(&self, router: RouterId, column: usize) -> Port {
        debug_assert!(column < self.fabric_ports(router));
        Port::from_index(self.host_ports(router) + column)
    }

    /// All fabric ports of `router` except `exclude` (ε-greedy
    /// exploration candidates).
    fn exploration_ports(&self, router: RouterId, exclude: Option<Port>) -> Vec<Port> {
        (self.host_ports(router)..self.radix(router))
            .map(Port::from_index)
            .filter(|p| Some(*p) != exclude)
            .collect()
    }

    /// The [`HopKind`] of a fabric port's link (panics on host ports).
    fn link_kind(&self, router: RouterId, port: Port) -> HopKind {
        match self.port_kind(router, port) {
            PortKind::Local => HopKind::Local,
            PortKind::Global => HopKind::Global,
            PortKind::Host => panic!("host ports have no link kind"),
        }
    }

    // ------------------------------------------------------------------
    // Liveness (fault injection)
    // ------------------------------------------------------------------

    /// The fault-injection mask of this topology instance. A freshly
    /// built topology is pristine (everything up); the engine mutates the
    /// mask of its own clone when it applies a fault schedule.
    fn liveness(&self) -> &LivenessMask;

    /// Mutable access to the fault-injection mask.
    fn liveness_mut(&mut self) -> &mut LivenessMask;

    /// Whether `port` of `router` is currently up. Killing a link marks
    /// *both* endpoint ports down, so callers never need to consult the
    /// far side (the query is purely local to `router`).
    #[inline]
    fn port_up(&self, router: RouterId, port: Port) -> bool {
        self.liveness().port_up(router, port)
    }

    /// Whether `router` is currently up.
    #[inline]
    fn router_up(&self, router: RouterId) -> bool {
        self.liveness().router_up(router)
    }

    // ------------------------------------------------------------------
    // Node attachment
    // ------------------------------------------------------------------

    /// The router a node is attached to.
    fn router_of_node(&self, node: NodeId) -> RouterId;

    /// The host-port slot the node occupies on its router.
    fn node_slot(&self, node: NodeId) -> usize;

    /// The host port that ejects to `node` (contract: host port index ==
    /// node slot).
    fn ejection_port(&self, node: NodeId) -> Port {
        Port::from_index(self.node_slot(node))
    }

    // ------------------------------------------------------------------
    // Locality domains
    // ------------------------------------------------------------------

    /// The domain a router belongs to.
    fn domain_of_router(&self, router: RouterId) -> GroupId;

    /// The domain a node belongs to (same as its router's domain).
    fn domain_of_node(&self, node: NodeId) -> GroupId {
        self.domain_of_router(self.router_of_node(node))
    }

    /// The contiguous router-id range of a domain. Domain `d + 1`'s range
    /// starts exactly where domain `d`'s ends.
    fn router_range_of_domain(&self, domain: usize) -> Range<usize>;

    /// The contiguous node-id range of a domain (same contiguity
    /// contract).
    fn node_range_of_domain(&self, domain: usize) -> Range<usize>;

    /// The minimum latency of any link between routers of *different*
    /// domains — the conservative sharding lookahead. All shipped
    /// topologies route cross-domain traffic over global-latency links.
    fn min_cross_domain_latency(&self, local_ns: u64, global_ns: u64) -> u64 {
        let _ = local_ns;
        global_ns
    }

    // ------------------------------------------------------------------
    // Wiring
    // ------------------------------------------------------------------

    /// What sits on the far side of `port` of `router`.
    fn neighbor(&self, router: RouterId, port: Port) -> Neighbor;

    /// The router on the far side of a fabric port (panics on host
    /// ports).
    fn neighbor_router(&self, router: RouterId, port: Port) -> RouterId {
        match self.neighbor(router, port) {
            Neighbor::Router { router, .. } => router,
            Neighbor::Node(_) => panic!("neighbor_router called on a host port"),
        }
    }

    // ------------------------------------------------------------------
    // Minimal routing
    // ------------------------------------------------------------------

    /// The output port of `current` on the canonical minimal route
    /// towards `dest`, or `None` when `current == dest`. Must make strict
    /// progress: repeatedly following it reaches `dest` within
    /// [`MAX_MINIMAL_HOPS`].
    fn minimal_port(&self, current: RouterId, dest: RouterId) -> Option<Port>;

    /// Like [`Topology::minimal_port`] but towards a node, returning the
    /// ejection port at the destination router.
    fn minimal_port_to_node(&self, current: RouterId, dest_node: NodeId) -> Port {
        let dest_router = self.router_of_node(dest_node);
        match self.minimal_port(current, dest_router) {
            Some(p) => p,
            None => self.ejection_port(dest_node),
        }
    }

    /// The hop kinds along the canonical minimal route (used for
    /// congestion-free delivery-time estimates).
    fn minimal_hop_kinds(&self, src: RouterId, dst: RouterId) -> Vec<HopKind> {
        let mut kinds = Vec::with_capacity(self.diameter());
        let mut current = src;
        while current != dst {
            let port = self
                .minimal_port(current, dst)
                .expect("non-equal routers must have a minimal port");
            kinds.push(self.link_kind(current, port));
            current = self.neighbor_router(current, port);
            assert!(
                kinds.len() <= MAX_MINIMAL_HOPS,
                "minimal route of {} looped ({src} -> {dst})",
                self.kind_name()
            );
        }
        kinds
    }

    /// Number of router-to-router hops of the canonical minimal route.
    fn minimal_hops(&self, src: RouterId, dst: RouterId) -> usize {
        self.minimal_hop_kinds(src, dst).len()
    }

    /// The hop kinds of a *typical* congestion-free minimal route from
    /// `router` to a node-bearing router of `domain` (Q-table
    /// initialisation; an average-case estimate, not an exact path).
    fn estimate_hops_to_domain(&self, router: RouterId, domain: GroupId) -> Vec<HopKind>;

    // ------------------------------------------------------------------
    // Non-minimal routing primitives
    // ------------------------------------------------------------------

    /// An output port of `router` that makes progress towards `domain`
    /// (the router must not already be a member of `domain`).
    fn port_toward_domain(&self, router: RouterId, domain: GroupId) -> Port;

    /// If `router` has a port whose next hop lands *inside* `domain`,
    /// that port (the "own global link" of the Dragonfly, the core
    /// down-link of a fat-tree, the row link of a HyperX).
    fn direct_port_to_domain(&self, router: RouterId, domain: GroupId) -> Option<Port>;

    /// A uniformly random intermediate domain for Valiant routing: any
    /// domain other than `src_domain` and `dst_domain`. Callers must
    /// ensure `num_domains() > 2`. The default rejection-samples the
    /// domain index; implementations overriding it must consume the RNG
    /// identically to keep the cross-topology determinism contract
    /// (Dragonfly pins its pre-trait stream by delegating to
    /// `random_intermediate_group`, which draws the same way).
    fn random_intermediate_domain(
        &self,
        rng: &mut StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> GroupId {
        debug_assert!(self.num_domains() > 2, "valiant needs three domains");
        loop {
            let candidate = GroupId::from_index(rng.gen_range(0..self.num_domains()));
            if candidate != src_domain && candidate != dst_domain {
                return candidate;
            }
        }
    }

    /// A uniformly random node-bearing intermediate router outside the
    /// source and destination domains (Valiant-node routing). Callers
    /// must ensure `num_domains() > 2`.
    fn random_intermediate_router(
        &self,
        rng: &mut StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> RouterId;

    /// A uniformly random *intra-domain* escape port of `router` (the
    /// Q-adaptive intermediate-domain reroute and VALn-style local
    /// detours). Falls back to a random fabric port on routers without
    /// intra-domain links.
    fn random_escape_port(&self, rng: &mut StdRng, router: RouterId) -> Port;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use crate::topology::Dragonfly;

    #[test]
    fn default_port_helpers_match_the_dragonfly_layout() {
        let t = Dragonfly::new(DragonflyConfig::tiny());
        let r = RouterId(3);
        // Trait defaults agree with the hand-written PortLayout.
        assert_eq!(Topology::fabric_ports(&t, r), t.layout().fabric_ports());
        for port in t.layout().fabric_port_iter() {
            assert_eq!(
                Topology::qtable_column(&t, r, port),
                t.layout().qtable_column(port)
            );
        }
        for col in 0..t.layout().fabric_ports() {
            assert_eq!(
                Topology::port_for_column(&t, r, col),
                t.layout().port_for_column(col)
            );
        }
        assert_eq!(
            Topology::exploration_ports(&t, r, None),
            t.exploration_ports(None)
        );
    }
}
