//! [`TopologySpec`] — the serialisable "which topology" tag used by
//! experiment specs and scenario files.
//!
//! The wire form is an externally tagged map with a lowercase tag:
//!
//! ```toml
//! [topology.dragonfly]
//! p = 4
//! a = 8
//! h = 4
//!
//! # or
//! [topology.fattree]
//! k = 4
//!
//! # or
//! [topology.hyperx]
//! p = 2
//! rows = 6
//! cols = 6
//! ```
//!
//! The pre-trait scenario format — a bare `[topology]` table with
//! `p`/`a`/`h` keys — still deserialises as a Dragonfly, so every
//! existing scenario file keeps working unchanged.

use crate::any::AnyTopology;
use crate::config::DragonflyConfig;
use crate::fattree::{FatTree, FatTreeConfig};
use crate::hyperx::{HyperX, HyperXConfig};
use crate::topology::Dragonfly;
use serde::{Deserialize, Error, Serialize, Value};

/// A serialisable topology description: the tagged union of every
/// registered topology's configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// The paper's Dragonfly, `(p, a, h)`.
    Dragonfly(DragonflyConfig),
    /// A three-level k-ary fat-tree.
    FatTree(FatTreeConfig),
    /// A 2-D HyperX / flattened butterfly, `(p, rows, cols)`.
    HyperX(HyperXConfig),
}

impl TopologySpec {
    /// The lowercase wire tag of the variant.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TopologySpec::Dragonfly(_) => "dragonfly",
            TopologySpec::FatTree(_) => "fattree",
            TopologySpec::HyperX(_) => "hyperx",
        }
    }

    /// Validate the parameters, returning a friendly message naming the
    /// topology and the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TopologySpec::Dragonfly(cfg) => DragonflyConfig::new(cfg.p, cfg.a, cfg.h)
                .map(|_| ())
                .map_err(|e| format!("dragonfly: {e}")),
            TopologySpec::FatTree(cfg) => cfg.validate().map_err(|e| format!("fattree: {e}")),
            TopologySpec::HyperX(cfg) => cfg.validate().map_err(|e| format!("hyperx: {e}")),
        }
    }

    /// Build the wired topology (the spec must be valid — run
    /// [`TopologySpec::validate`] on untrusted input first).
    pub fn build(&self) -> AnyTopology {
        match self {
            TopologySpec::Dragonfly(cfg) => Dragonfly::new(*cfg).into(),
            TopologySpec::FatTree(cfg) => FatTree::new(*cfg).into(),
            TopologySpec::HyperX(cfg) => HyperX::new(*cfg).into(),
        }
    }

    /// Number of compute nodes the built system would have.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::Dragonfly(cfg) => cfg.nodes(),
            TopologySpec::FatTree(cfg) => cfg.nodes(),
            TopologySpec::HyperX(cfg) => cfg.nodes(),
        }
    }

    /// Number of locality domains (Dragonfly groups / fat-tree pods /
    /// HyperX rows) the built system would have.
    pub fn num_domains(&self) -> usize {
        match self {
            TopologySpec::Dragonfly(cfg) => cfg.groups(),
            TopologySpec::FatTree(cfg) => cfg.pods(),
            TopologySpec::HyperX(cfg) => cfg.rows,
        }
    }

    /// Registered topologies with their parameter schemas — the data
    /// behind `qadaptive-cli topologies`.
    pub fn catalog() -> Vec<TopologyKindInfo> {
        vec![
            TopologyKindInfo {
                name: "dragonfly",
                parameters: "p (nodes/router), a (routers/group), h (global links/router)",
                constraints: "p, a, h >= 1; a >= 2; balanced when a = 2p = 2h",
                domains: "groups (g = a*h + 1)",
                example: "[topology.dragonfly]\np = 4\na = 8\nh = 4",
            },
            TopologyKindInfo {
                name: "fattree",
                parameters: "k (switch arity)",
                constraints: "k even, k >= 2; k pods, k^2/4 cores, k^3/4 hosts",
                domains: "pods (plus each pod's slice of the core)",
                example: "[topology.fattree]\nk = 4",
            },
            TopologyKindInfo {
                name: "hyperx",
                parameters: "p (nodes/router), rows, cols (router grid)",
                constraints: "p >= 1; rows, cols >= 2; all-to-all in each dimension",
                domains: "rows (column links are the global dimension)",
                example: "[topology.hyperx]\np = 2\nrows = 6\ncols = 6",
            },
        ]
    }
}

/// Catalog entry describing one registered topology kind.
#[derive(Debug, Clone, Copy)]
pub struct TopologyKindInfo {
    /// Wire tag (`dragonfly`, `fattree`, `hyperx`).
    pub name: &'static str,
    /// Parameter summary.
    pub parameters: &'static str,
    /// Structural constraints checked by validation.
    pub constraints: &'static str,
    /// What the locality domains (sharding units) are.
    pub domains: &'static str,
    /// Minimal scenario-file snippet.
    pub example: &'static str,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec::Dragonfly(DragonflyConfig::default())
    }
}

impl From<DragonflyConfig> for TopologySpec {
    fn from(cfg: DragonflyConfig) -> Self {
        TopologySpec::Dragonfly(cfg)
    }
}

impl From<FatTreeConfig> for TopologySpec {
    fn from(cfg: FatTreeConfig) -> Self {
        TopologySpec::FatTree(cfg)
    }
}

impl From<HyperXConfig> for TopologySpec {
    fn from(cfg: HyperXConfig) -> Self {
        TopologySpec::HyperX(cfg)
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologySpec::Dragonfly(cfg) => cfg.fmt(f),
            TopologySpec::FatTree(cfg) => cfg.fmt(f),
            TopologySpec::HyperX(cfg) => cfg.fmt(f),
        }
    }
}

impl Serialize for TopologySpec {
    fn to_value(&self) -> Value {
        let (tag, inner) = match self {
            TopologySpec::Dragonfly(cfg) => ("dragonfly", cfg.to_value()),
            TopologySpec::FatTree(cfg) => ("fattree", cfg.to_value()),
            TopologySpec::HyperX(cfg) => ("hyperx", cfg.to_value()),
        };
        Value::Map(vec![(tag.to_string(), inner)])
    }
}

impl Deserialize for TopologySpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Map(entries) = v else {
            return Err(Error::msg(format!(
                "topology must be a map, found {}",
                v.kind()
            )));
        };
        // Externally tagged form: a single `{ kind: { params } }` entry.
        if let [(tag, inner)] = entries.as_slice() {
            match tag.to_ascii_lowercase().replace(['_', '-'], "").as_str() {
                "dragonfly" => return DragonflyConfig::from_value(inner).map(Self::Dragonfly),
                "fattree" => return FatTreeConfig::from_value(inner).map(Self::FatTree),
                "hyperx" | "flattenedbutterfly" => {
                    return HyperXConfig::from_value(inner).map(Self::HyperX)
                }
                _ => {}
            }
        }
        // Legacy untagged Dragonfly: a bare `{ p, a, h }` table (every
        // pre-trait scenario file).
        if v.get("p").is_some() && v.get("a").is_some() && v.get("h").is_some() {
            return DragonflyConfig::from_value(v).map(Self::Dragonfly);
        }
        Err(Error::msg(
            "unknown topology: expected `[topology.dragonfly]` (p, a, h), \
             `[topology.fattree]` (k), `[topology.hyperx]` (p, rows, cols), \
             or the legacy bare `[topology]` Dragonfly table with p/a/h",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Topology;

    #[test]
    fn tagged_forms_round_trip_through_toml_and_json() {
        for spec in [
            TopologySpec::Dragonfly(DragonflyConfig::tiny()),
            TopologySpec::FatTree(FatTreeConfig::tiny()),
            TopologySpec::HyperX(HyperXConfig::tiny()),
        ] {
            let value = spec.to_value();
            assert_eq!(TopologySpec::from_value(&value).unwrap(), spec);
        }
    }

    #[test]
    fn legacy_untagged_dragonfly_still_parses() {
        let legacy = Value::Map(vec![
            ("p".into(), Value::Int(2)),
            ("a".into(), Value::Int(4)),
            ("h".into(), Value::Int(2)),
        ]);
        assert_eq!(
            TopologySpec::from_value(&legacy).unwrap(),
            TopologySpec::Dragonfly(DragonflyConfig::tiny())
        );
    }

    #[test]
    fn unknown_topologies_get_a_helpful_error() {
        let bad = Value::Map(vec![("torus".into(), Value::Map(vec![]))]);
        let err = TopologySpec::from_value(&bad).unwrap_err().to_string();
        assert!(err.contains("dragonfly"), "{err}");
        assert!(err.contains("fattree"), "{err}");
        assert!(err.contains("hyperx"), "{err}");
    }

    #[test]
    fn validation_messages_name_the_topology_and_constraint() {
        let odd = TopologySpec::FatTree(FatTreeConfig { k: 5 });
        let err = odd.validate().unwrap_err();
        assert!(err.contains("fattree"), "{err}");
        assert!(err.contains("even"), "{err}");
        let flat = TopologySpec::HyperX(HyperXConfig {
            p: 2,
            rows: 1,
            cols: 8,
        });
        assert!(flat.validate().unwrap_err().contains("2x2"));
        let zero = TopologySpec::Dragonfly(DragonflyConfig { p: 0, a: 4, h: 2 });
        assert!(zero.validate().unwrap_err().contains("dragonfly"));
        assert!(TopologySpec::default().validate().is_ok());
    }

    #[test]
    fn build_produces_matching_counts() {
        for spec in [
            TopologySpec::Dragonfly(DragonflyConfig::tiny()),
            TopologySpec::FatTree(FatTreeConfig::tiny()),
            TopologySpec::HyperX(HyperXConfig::tiny()),
        ] {
            let topo = spec.build();
            assert_eq!(topo.num_nodes(), spec.num_nodes());
            assert_eq!(topo.num_domains(), spec.num_domains());
            assert_eq!(topo.kind_name(), spec.kind_name());
        }
    }

    #[test]
    fn catalog_covers_every_variant() {
        let names: Vec<&str> = TopologySpec::catalog().iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["dragonfly", "fattree", "hyperx"]);
    }
}
