//! Path computation on the Dragonfly: minimal routes, Valiant intermediate
//! selection, and hop-kind enumeration.
//!
//! The all-to-all Dragonfly is a diameter-3 topology: a minimal route uses
//! at most one local hop in the source group, one global hop, and one local
//! hop in the destination group. Because `g = a*h + 1` there is exactly one
//! global link between any two groups, so the minimal route between two
//! routers is unique.

use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::ports::PortKind;
use crate::topology::Dragonfly;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The physical type of a single router-to-router hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopKind {
    /// An intra-group link.
    Local,
    /// An inter-group link.
    Global,
}

impl Dragonfly {
    /// The output port on `current` for the *unique minimal route* towards
    /// `dest` router. Returns `None` when `current == dest` (the packet
    /// should be ejected to its host port).
    pub fn minimal_port(&self, current: RouterId, dest: RouterId) -> Option<Port> {
        if current == dest {
            return None;
        }
        let cg = self.group_of_router(current);
        let dg = self.group_of_router(dest);
        if cg == dg {
            // One local hop.
            return Some(self.local_port_to(current, dest));
        }
        // Different group: use own global link if we have one, otherwise hop
        // to the gateway router of our group.
        if let Some(gp) = self.global_port_to(current, dg) {
            return Some(gp);
        }
        let (gw, _) = self.gateway(cg, dg);
        debug_assert_ne!(gw, current);
        Some(self.local_port_to(current, gw))
    }

    /// The output port on `current` for the minimal route towards the router
    /// of `dest_node`, or the ejection host port when `current` already is
    /// that router.
    pub fn minimal_port_to_node(&self, current: RouterId, dest_node: NodeId) -> Port {
        let dest_router = self.router_of_node(dest_node);
        match self.minimal_port(current, dest_router) {
            Some(p) => p,
            None => self.ejection_port(dest_node),
        }
    }

    /// Number of router-to-router hops of the minimal route.
    pub fn minimal_hops(&self, src: RouterId, dst: RouterId) -> usize {
        self.minimal_hop_kinds(src, dst).len()
    }

    /// The sequence of hop kinds along the minimal route, used to compute
    /// the theoretical congestion-free delivery time that initialises the
    /// Q-tables.
    pub fn minimal_hop_kinds(&self, src: RouterId, dst: RouterId) -> Vec<HopKind> {
        let mut kinds = Vec::with_capacity(3);
        let mut current = src;
        while current != dst {
            let port = self
                .minimal_port(current, dst)
                .expect("non-equal routers must have a minimal port");
            match self.port_kind(port) {
                PortKind::Local => kinds.push(HopKind::Local),
                PortKind::Global => kinds.push(HopKind::Global),
                PortKind::Host => unreachable!("minimal_port never returns a host port"),
            }
            current = self.neighbor_router(current, port);
            debug_assert!(kinds.len() <= 3, "minimal route exceeded the diameter");
        }
        kinds
    }

    /// The full minimal route as the list of routers visited
    /// (starting with `src`, ending with `dst`).
    pub fn minimal_route(&self, src: RouterId, dst: RouterId) -> Vec<RouterId> {
        let mut route = vec![src];
        let mut current = src;
        while current != dst {
            let port = self.minimal_port(current, dst).unwrap();
            current = self.neighbor_router(current, port);
            route.push(current);
            assert!(route.len() <= 4, "minimal route exceeded the diameter");
        }
        route
    }

    /// Pick a uniformly random intermediate *group* for Valiant-global
    /// routing: any group other than the source and destination groups.
    pub fn random_intermediate_group<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        src_group: GroupId,
        dst_group: GroupId,
    ) -> GroupId {
        let g = self.num_groups();
        debug_assert!(g > 2, "valiant needs at least three groups");
        loop {
            let candidate = GroupId::from_index(rng.gen_range(0..g));
            if candidate != src_group && candidate != dst_group {
                return candidate;
            }
        }
    }

    /// Pick a uniformly random intermediate *router* for Valiant-node
    /// routing: any router outside the source and destination groups.
    pub fn random_intermediate_router<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        src_group: GroupId,
        dst_group: GroupId,
    ) -> RouterId {
        let group = self.random_intermediate_group(rng, src_group, dst_group);
        let local = rng.gen_range(0..self.config().a);
        self.router_in_group(group, local)
    }

    /// A uniformly random local port of a router (used by Q-adaptive in the
    /// first intermediate-group router and by VALn rerouting).
    pub fn random_local_port<R: Rng + ?Sized>(&self, rng: &mut R) -> Port {
        let slot = rng.gen_range(0..self.config().a - 1);
        self.layout().local_port(slot)
    }

    /// All fabric ports of a router that do not immediately return the
    /// packet to the router it came from. Used by ε-greedy exploration.
    pub fn exploration_ports(&self, exclude: Option<Port>) -> Vec<Port> {
        self.layout()
            .fabric_port_iter()
            .filter(|p| Some(*p) != exclude)
            .collect()
    }

    /// The theoretical number of local/global hops of a minimal route
    /// between two *groups* (ignoring the exact routers): `(locals, globals)`.
    pub fn minimal_group_hops(&self, src: GroupId, dst: GroupId) -> (usize, usize) {
        if src == dst {
            (1, 0)
        } else {
            (2, 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyConfig::tiny())
    }

    #[test]
    fn minimal_route_is_within_diameter() {
        let t = topo();
        for src in t.routers() {
            for dst in t.routers() {
                let hops = t.minimal_hops(src, dst);
                if src == dst {
                    assert_eq!(hops, 0);
                } else if t.group_of_router(src) == t.group_of_router(dst) {
                    assert_eq!(hops, 1);
                } else {
                    assert!((1..=3).contains(&hops), "{src} -> {dst}: {hops}");
                }
            }
        }
    }

    #[test]
    fn minimal_route_reaches_destination() {
        let t = topo();
        for src in t.routers() {
            for dst in t.routers() {
                let route = t.minimal_route(src, dst);
                assert_eq!(*route.first().unwrap(), src);
                assert_eq!(*route.last().unwrap(), dst);
            }
        }
    }

    #[test]
    fn minimal_hop_kinds_have_at_most_one_global() {
        let t = topo();
        for src in t.routers() {
            for dst in t.routers() {
                let kinds = t.minimal_hop_kinds(src, dst);
                let globals = kinds.iter().filter(|k| **k == HopKind::Global).count();
                if t.group_of_router(src) == t.group_of_router(dst) {
                    assert_eq!(globals, 0);
                } else {
                    assert_eq!(globals, 1);
                }
            }
        }
    }

    #[test]
    fn minimal_port_to_node_ejects_at_destination_router() {
        let t = topo();
        let node = NodeId(13);
        let router = t.router_of_node(node);
        let port = t.minimal_port_to_node(router, node);
        assert_eq!(t.port_kind(port), PortKind::Host);
        assert_eq!(port, t.ejection_port(node));
    }

    #[test]
    fn random_intermediates_avoid_src_and_dst_groups() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(1);
        let src = GroupId(0);
        let dst = GroupId(3);
        for _ in 0..500 {
            let g = t.random_intermediate_group(&mut rng, src, dst);
            assert_ne!(g, src);
            assert_ne!(g, dst);
            let r = t.random_intermediate_router(&mut rng, src, dst);
            assert_ne!(t.group_of_router(r), src);
            assert_ne!(t.group_of_router(r), dst);
        }
    }

    #[test]
    fn exploration_ports_exclude_requested_port() {
        let t = topo();
        let all = t.exploration_ports(None);
        assert_eq!(all.len(), t.layout().fabric_ports());
        let some = t.exploration_ports(Some(all[0]));
        assert_eq!(some.len(), all.len() - 1);
        assert!(!some.contains(&all[0]));
    }

    #[test]
    fn paper_system_minimal_routes_spot_check() {
        let t = Dragonfly::new(DragonflyConfig::paper_1056());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let src = RouterId(rng.gen_range(0..t.num_routers() as u32));
            let dst = RouterId(rng.gen_range(0..t.num_routers() as u32));
            let hops = t.minimal_hops(src, dst);
            assert!(hops <= 3);
            let route = t.minimal_route(src, dst);
            assert_eq!(route.len(), hops + 1);
        }
    }
}
