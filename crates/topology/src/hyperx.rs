//! A two-dimensional HyperX (flattened-butterfly) topology.
//!
//! Routers form a `rows × cols` grid; every router is directly connected
//! to **all** other routers in its row and to **all** other routers in
//! its column, and hosts `p` compute nodes. Row links are short
//! (**local** latency) and column links span the machine (**global**
//! latency), mirroring the Dragonfly's local/global split.
//!
//! ## Locality domains
//!
//! A domain is one row: router ids are row-major, so each row is a
//! contiguous id range, every intra-row link stays inside a domain and
//! every inter-row (column) link is a global-latency cross-domain link —
//! exactly the lookahead structure the conservative-parallel engine
//! needs (see [`crate::traits::Topology`]).
//!
//! Minimal routing is dimension-ordered (column first, then row):
//! at most one local plus one global hop, diameter 2.

use crate::ids::{GroupId, NodeId, Port, RouterId};
use crate::paths::HopKind;
use crate::ports::PortKind;
use crate::topology::Neighbor;
use crate::traits::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a 2-D HyperX / flattened butterfly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HyperXConfig {
    /// Compute nodes per router.
    pub p: usize,
    /// Grid rows (= locality domains; all-to-all within a column).
    pub rows: usize,
    /// Grid columns (all-to-all within a row).
    pub cols: usize,
}

impl HyperXConfig {
    /// Validate the structural constraints with a friendly message.
    pub fn validate(&self) -> Result<(), String> {
        if self.p == 0 {
            return Err("hyperx needs at least 1 node per router (p >= 1)".to_string());
        }
        if self.rows < 2 || self.cols < 2 {
            return Err(format!(
                "hyperx needs at least a 2x2 router grid so both dimensions have links \
                 (got rows = {}, cols = {})",
                self.rows, self.cols
            ));
        }
        Ok(())
    }

    /// Routers in the grid.
    pub fn routers(&self) -> usize {
        self.rows * self.cols
    }

    /// Compute nodes in the system.
    pub fn nodes(&self) -> usize {
        self.routers() * self.p
    }

    /// Router radix: hosts + row links + column links.
    pub fn radix(&self) -> usize {
        self.p + (self.cols - 1) + (self.rows - 1)
    }

    /// A 72-node 2 × (6 × 6) system for tests and tiny scenarios (same
    /// node count as the tiny Dragonfly).
    pub fn tiny() -> Self {
        Self {
            p: 2,
            rows: 6,
            cols: 6,
        }
    }

    /// A 343-node-ish small system (3 × 8 × 14 = 336 nodes).
    pub fn small() -> Self {
        Self {
            p: 3,
            rows: 8,
            cols: 14,
        }
    }
}

impl std::fmt::Display for HyperXConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HyperX(p={}, rows={}, cols={}, k={}, m={}, N={})",
            self.p,
            self.rows,
            self.cols,
            self.radix(),
            self.routers(),
            self.nodes()
        )
    }
}

/// A fully wired 2-D HyperX. All queries are O(1) arithmetic.
#[derive(Debug, Clone)]
pub struct HyperX {
    cfg: HyperXConfig,
    /// Fault-injection mask; empty (everything up) on a fresh topology.
    liveness: crate::liveness::LivenessMask,
}

impl HyperX {
    /// Build the topology (the configuration must be valid).
    pub fn new(cfg: HyperXConfig) -> Self {
        cfg.validate().expect("invalid hyperx configuration");
        Self {
            cfg,
            liveness: crate::liveness::LivenessMask::new(),
        }
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &HyperXConfig {
        &self.cfg
    }

    #[inline]
    fn row(&self, router: RouterId) -> usize {
        router.index() / self.cfg.cols
    }

    #[inline]
    fn col(&self, router: RouterId) -> usize {
        router.index() % self.cfg.cols
    }

    #[inline]
    fn router_at(&self, row: usize, col: usize) -> RouterId {
        RouterId::from_index(row * self.cfg.cols + col)
    }

    /// The local (row) port of `router` towards column `to_col`
    /// (skip-self slot numbering, like the Dragonfly's local ports).
    fn row_port_to(&self, router: RouterId, to_col: usize) -> Port {
        let me = self.col(router);
        debug_assert_ne!(me, to_col);
        let slot = if to_col < me { to_col } else { to_col - 1 };
        Port::from_index(self.cfg.p + slot)
    }

    /// The global (column) port of `router` towards row `to_row`.
    fn col_port_to(&self, router: RouterId, to_row: usize) -> Port {
        let me = self.row(router);
        debug_assert_ne!(me, to_row);
        let slot = if to_row < me { to_row } else { to_row - 1 };
        Port::from_index(self.cfg.p + (self.cfg.cols - 1) + slot)
    }
}

impl Topology for HyperX {
    fn kind_name(&self) -> &'static str {
        "hyperx"
    }

    fn liveness(&self) -> &crate::liveness::LivenessMask {
        &self.liveness
    }

    fn liveness_mut(&mut self) -> &mut crate::liveness::LivenessMask {
        &mut self.liveness
    }

    fn label(&self) -> String {
        self.cfg.to_string()
    }

    fn num_routers(&self) -> usize {
        self.cfg.routers()
    }

    fn num_nodes(&self) -> usize {
        self.cfg.nodes()
    }

    fn num_domains(&self) -> usize {
        self.cfg.rows
    }

    fn max_nodes_per_router(&self) -> usize {
        self.cfg.p
    }

    fn diameter(&self) -> usize {
        2
    }

    fn radix(&self, _router: RouterId) -> usize {
        self.cfg.radix()
    }

    fn host_ports(&self, _router: RouterId) -> usize {
        self.cfg.p
    }

    fn port_kind(&self, _router: RouterId, port: Port) -> PortKind {
        let i = port.index();
        if i < self.cfg.p {
            PortKind::Host
        } else if i < self.cfg.p + self.cfg.cols - 1 {
            PortKind::Local
        } else {
            debug_assert!(i < self.cfg.radix());
            PortKind::Global
        }
    }

    fn router_of_node(&self, node: NodeId) -> RouterId {
        RouterId::from_index(node.index() / self.cfg.p)
    }

    fn node_slot(&self, node: NodeId) -> usize {
        node.index() % self.cfg.p
    }

    fn domain_of_router(&self, router: RouterId) -> GroupId {
        GroupId::from_index(self.row(router))
    }

    fn router_range_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        domain * self.cfg.cols..(domain + 1) * self.cfg.cols
    }

    fn node_range_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        let per_row = self.cfg.cols * self.cfg.p;
        domain * per_row..(domain + 1) * per_row
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Neighbor {
        let i = port.index();
        let p = self.cfg.p;
        if i < p {
            return Neighbor::Node(NodeId::from_index(router.index() * p + i));
        }
        if i < p + self.cfg.cols - 1 {
            let slot = i - p;
            let me = self.col(router);
            let to_col = if slot < me { slot } else { slot + 1 };
            let far = self.router_at(self.row(router), to_col);
            return Neighbor::Router {
                router: far,
                port: self.row_port_to(far, me),
            };
        }
        let slot = i - p - (self.cfg.cols - 1);
        let me = self.row(router);
        let to_row = if slot < me { slot } else { slot + 1 };
        let far = self.router_at(to_row, self.col(router));
        Neighbor::Router {
            router: far,
            port: self.col_port_to(far, me),
        }
    }

    fn minimal_port(&self, current: RouterId, dest: RouterId) -> Option<Port> {
        if current == dest {
            return None;
        }
        // Dimension order: align the column (local hop) first, then the
        // row (global hop).
        if self.col(current) != self.col(dest) {
            return Some(self.row_port_to(current, self.col(dest)));
        }
        Some(self.col_port_to(current, self.row(dest)))
    }

    fn estimate_hops_to_domain(&self, router: RouterId, domain: GroupId) -> Vec<HopKind> {
        if self.row(router) == domain.index() {
            vec![HopKind::Local]
        } else {
            vec![HopKind::Global, HopKind::Local]
        }
    }

    fn port_toward_domain(&self, router: RouterId, domain: GroupId) -> Port {
        debug_assert_ne!(self.domain_of_router(router), domain);
        self.col_port_to(router, domain.index())
    }

    fn direct_port_to_domain(&self, router: RouterId, domain: GroupId) -> Option<Port> {
        (self.domain_of_router(router) != domain).then(|| self.col_port_to(router, domain.index()))
    }

    fn random_intermediate_router(
        &self,
        rng: &mut StdRng,
        src_domain: GroupId,
        dst_domain: GroupId,
    ) -> RouterId {
        let domain = self.random_intermediate_domain(rng, src_domain, dst_domain);
        self.router_at(domain.index(), rng.gen_range(0..self.cfg.cols))
    }

    fn random_escape_port(&self, rng: &mut StdRng, _router: RouterId) -> Port {
        Port::from_index(self.cfg.p + rng.gen_range(0..self.cfg.cols - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> HyperX {
        HyperX::new(HyperXConfig::tiny()) // 2 × (6 × 6) = 72 nodes
    }

    #[test]
    fn tiny_counts_match_the_closed_forms() {
        let t = topo();
        assert_eq!(t.num_routers(), 36);
        assert_eq!(t.num_nodes(), 72);
        assert_eq!(t.num_domains(), 6);
        assert_eq!(t.radix(RouterId(0)), 2 + 5 + 5);
    }

    #[test]
    fn validation_rejects_degenerate_grids() {
        assert!(HyperXConfig {
            p: 0,
            rows: 4,
            cols: 4
        }
        .validate()
        .is_err());
        assert!(HyperXConfig {
            p: 2,
            rows: 1,
            cols: 4
        }
        .validate()
        .is_err());
        assert!(HyperXConfig {
            p: 2,
            rows: 4,
            cols: 1
        }
        .validate()
        .is_err());
        assert!(HyperXConfig::tiny().validate().is_ok());
    }

    #[test]
    fn links_are_symmetric() {
        let t = topo();
        for r in 0..t.num_routers() {
            let router = RouterId::from_index(r);
            for p in t.host_ports(router)..t.radix(router) {
                let port = Port::from_index(p);
                match t.neighbor(router, port) {
                    Neighbor::Router {
                        router: far,
                        port: far_port,
                    } => {
                        assert_eq!(
                            t.neighbor(far, far_port),
                            Neighbor::Router { router, port },
                            "{router} port {port}"
                        );
                    }
                    Neighbor::Node(_) => panic!("fabric port resolved to a node"),
                }
            }
        }
    }

    #[test]
    fn minimal_routing_is_dimension_ordered_and_within_diameter() {
        let t = topo();
        for src in 0..t.num_routers() {
            for dst in 0..t.num_routers() {
                let (src, dst) = (RouterId::from_index(src), RouterId::from_index(dst));
                let kinds = t.minimal_hop_kinds(src, dst);
                assert!(kinds.len() <= 2);
                let locals = kinds.iter().filter(|k| **k == HopKind::Local).count();
                let globals = kinds.len() - locals;
                assert_eq!(locals, usize::from(t.col(src) != t.col(dst)));
                assert_eq!(globals, usize::from(t.row(src) != t.row(dst)));
            }
        }
    }

    #[test]
    fn cross_domain_links_are_always_global() {
        let t = topo();
        for r in 0..t.num_routers() {
            let router = RouterId::from_index(r);
            for p in t.host_ports(router)..t.radix(router) {
                let port = Port::from_index(p);
                let far = t.neighbor_router(router, port);
                let cross = t.domain_of_router(far) != t.domain_of_router(router);
                assert_eq!(
                    cross,
                    t.port_kind(router, port) == PortKind::Global,
                    "row links stay in-domain, column links leave it"
                );
            }
        }
    }

    #[test]
    fn direct_and_toward_domain_agree() {
        let t = topo();
        for r in 0..t.num_routers() {
            let router = RouterId::from_index(r);
            for d in 0..t.num_domains() {
                let domain = GroupId::from_index(d);
                if t.domain_of_router(router) == domain {
                    assert_eq!(t.direct_port_to_domain(router, domain), None);
                } else {
                    let port = t.direct_port_to_domain(router, domain).unwrap();
                    assert_eq!(port, t.port_toward_domain(router, domain));
                    assert_eq!(t.domain_of_router(t.neighbor_router(router, port)), domain);
                }
            }
        }
    }

    #[test]
    fn domain_ranges_are_contiguous() {
        let t = topo();
        let mut next = 0;
        for d in 0..t.num_domains() {
            let range = t.router_range_of_domain(d);
            assert_eq!(range.start, next);
            next = range.end;
        }
        assert_eq!(next, t.num_routers());
    }
}
